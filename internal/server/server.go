// Package server exposes the recommender as a JSON-over-HTTP service — the
// online deployment shape of the paper's system: videos are ingested as
// they are uploaded, anonymous viewers ask for recommendations against the
// clip they are watching, and comment traffic streams through the
// incremental maintenance path.
//
// The serving path is deadline-aware and overload-safe: request contexts
// thread into the engine's EMD refinement workers (a dropped client stops
// burning CPU), an admission controller sheds excess load with 503 +
// Retry-After instead of queueing unboundedly, near-deadline queries answer
// degraded (coarse SAR ranking) rather than timing out, and handler panics
// become 500s without killing the process.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"videorec"
	"videorec/internal/faults"
	"videorec/internal/overload"
	"videorec/internal/shard"
)

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// recorded when the client canceled the request before the answer was
// ready; nobody reads the response, but logs and stats should not count it
// as a server fault.
const StatusClientClosedRequest = 499

// Config tunes the serving resilience layer. The zero value disables
// admission control and per-request timeouts (suitable for tests and
// embedded use); cmd/vrecd wires all of it to flags.
type Config struct {
	// SnapshotPath, when non-empty, is where POST /snapshot persists the
	// engine.
	SnapshotPath string
	// MaxInFlight bounds concurrently executing recommendation queries.
	// <= 0 disables admission control. With LimitCeiling set this is the
	// INITIAL limit of the adaptive latency-gradient limiter; otherwise it
	// is fixed.
	MaxInFlight int
	// MaxQueue bounds how many queries may wait for an execution slot before
	// newcomers are shed. 0 with MaxInFlight > 0 defaults to MaxInFlight.
	MaxQueue int
	// LimitFloor / LimitCeiling bound the adaptive concurrency limiter.
	// LimitCeiling > 0 enables adaptation: the limit starts at MaxInFlight,
	// probes additively toward LimitCeiling while observed latency tracks
	// the no-queue baseline, and backs off multiplicatively toward
	// LimitFloor (default 1) when latency inflates. LimitCeiling == 0 keeps
	// the limit fixed at MaxInFlight.
	LimitFloor   int
	LimitCeiling int
	// AdjustWindow tunes the limiter's adjustment cadence (0 = 100ms).
	// Mostly a test/harness knob.
	AdjustWindow time.Duration
	// Brownout couples admission load to the engine's degrade path: under
	// queue pressure (tier 1) queries that waited for a slot — and under
	// saturation (tier 2) every query — run with their deadline shrunk to
	// BrownoutMargin, which sits inside the engine's DegradeMargin, so they
	// answer the coarse social-only ranking (degraded:true, never cached)
	// instead of competing for refinement the server cannot afford.
	Brownout bool
	// BrownoutMargin is the deadline handed to browned-out queries. It must
	// stay below the engine's DegradeMargin (default 20ms) for the coarse
	// path to engage up front. 0 defaults to 10ms.
	BrownoutMargin time.Duration
	// QueryTimeout is the per-request deadline for recommendation queries;
	// 0 means no deadline. The engine degrades (coarse SAR answer) rather
	// than erroring when the deadline is near.
	QueryTimeout time.Duration
	// MaxK caps the k query parameter; 0 defaults to 100.
	MaxK int
	// RetryAfter is the hint sent with shed (503) responses; 0 defaults to
	// 1s.
	RetryAfter time.Duration
	// CacheSize is the result LRU capacity; 0 defaults to 512.
	CacheSize int
	// BatchWindow enables query coalescing: concurrent stored-clip queries
	// against the same view version gather for up to this long and execute as
	// one backend batch, sharing candidate generation and deduplicating
	// identical (clip, k) requests. 0 disables coalescing (every query runs
	// serially, the pre-batching behavior). Single queries bypass the window
	// either way. Sensible values are sub-millisecond — the window trades
	// that much added latency under concurrency for aggregate throughput.
	BatchWindow time.Duration
	// MaxBatch caps how many queries one batch may hold before it flushes
	// without waiting out the window. 0 defaults to 64 (the core engine's
	// shared-gather chunk size). Ignored unless BatchWindow > 0.
	MaxBatch int
	// ReadOnly rejects every state-mutating endpoint (POST /videos, /build,
	// /updates) with 403 — the replica serving mode, where mutations arrive
	// only through journal shipping. POST /snapshot stays available: it
	// persists local state without changing it.
	ReadOnly bool
	// ReadyChecks are additional named conditions /readyz evaluates beyond
	// the built-in view-built gate — journal attachment, replica lag, or
	// anything deployment-specific.
	ReadyChecks []ReadyCheck
}

// Backend is the serving surface the handlers drive — satisfied by a
// single *videorec.Engine and by the scatter-gather shard router, so one
// deployment scales from one shard to N without touching handlers.
// Per-shard introspection (stats, replication endpoints) goes through
// NumShards/ShardEngine; a plain engine is its own single shard.
type Backend interface {
	Add(videorec.Clip) error
	Build()
	RecommendCtx(ctx context.Context, clipID string, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error)
	RecommendBatchCtx(ctx context.Context, reqs []videorec.BatchRequest) []videorec.BatchAnswer
	RecommendClipCtx(ctx context.Context, clip videorec.Clip, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error)
	ApplyUpdates(newComments map[string][]string) (videorec.UpdateSummary, error)
	Version() uint64
	Len() int
	SubCommunities() int
	Built() bool
	AppliedSeq() uint64
	SaveFile(path string) error
	SaveFileAndCompact(path string) error
	JournalStatus() (attached bool, path string, base, seq uint64)
	CloseJournal() error
	NumShards() int
	ShardEngine(i int) (*videorec.Engine, bool)
}

// Drainer is the optional shard-drain surface: backends that can take a
// shard out of the topology (the router) expose it; POST /shards/drain
// answers 409 on backends that cannot (a single engine).
type Drainer interface {
	DrainShard(i int) (moved int, err error)
}

// Server wraps an engine with HTTP handlers. Create with New or
// NewWithConfig, mount Handler().
type Server struct {
	eng     Backend
	cfg     Config
	queries atomic.Int64
	cache   *resultCache
	ctl     *overload.Controller // nil when MaxInFlight <= 0
	batch   *batcher             // nil unless Config.BatchWindow > 0

	snapMu sync.Mutex // serializes POST /snapshot

	shed     atomic.Int64 // requests rejected by admission control
	brownout atomic.Int64 // admitted requests deliberately browned out
	degraded atomic.Int64 // queries answered with the coarse ranking
	panics   atomic.Int64 // handler panics recovered

	// lastUpdate is the summary of the most recent successful POST /updates
	// batch; /stats surfaces its maintenance wall time and graph counters.
	lastUpdate atomic.Pointer[videorec.UpdateSummary]
}

// New wraps the engine with default (disabled) resilience settings.
// snapshotPath, when non-empty, is where POST /snapshot persists the
// engine. Stored-clip recommendations are cached in an LRU keyed by the
// engine's view version: mutations publish a new view (bumping the version)
// instead of purging, so hits against the live view keep being served while
// entries of lapsed views age out of the LRU.
func New(eng Backend, snapshotPath string) *Server {
	return NewWithConfig(eng, Config{SnapshotPath: snapshotPath})
}

// NewWithConfig wraps the engine with explicit resilience settings.
func NewWithConfig(eng Backend, cfg Config) *Server {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 100
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 512
	}
	if cfg.MaxInFlight > 0 && cfg.MaxQueue <= 0 {
		cfg.MaxQueue = cfg.MaxInFlight
	}
	if cfg.BrownoutMargin <= 0 {
		cfg.BrownoutMargin = 10 * time.Millisecond
	}
	return &Server{
		eng:   eng,
		cfg:   cfg,
		cache: newResultCache(cfg.CacheSize),
		ctl: overload.New(overload.Config{
			Limit:              cfg.MaxInFlight,
			Floor:              cfg.LimitFloor,
			Ceiling:            cfg.LimitCeiling,
			MaxQueue:           cfg.MaxQueue,
			AdjustWindow:       cfg.AdjustWindow,
			RetryAfterFallback: cfg.RetryAfter,
		}),
		batch: newBatcher(eng, cfg.BatchWindow, cfg.MaxBatch),
	}
}

// ClipJSON is the wire form of videorec.Clip.
type ClipJSON struct {
	ID             string      `json:"id"`
	Title          string      `json:"title,omitempty"`
	FPS            float64     `json:"fps,omitempty"`
	NominalSeconds float64     `json:"nominalSeconds,omitempty"`
	Frames         []FrameJSON `json:"frames"`
	Owner          string      `json:"owner,omitempty"`
	Commenters     []string    `json:"commenters,omitempty"`
}

// FrameJSON is the wire form of one frame.
type FrameJSON struct {
	W   int       `json:"w"`
	H   int       `json:"h"`
	Pix []float64 `json:"pix"`
}

// RecommendResponse is the wire form of a recommendation answer. Degraded
// marks coarse SAR-ranked results returned because the request deadline
// left no room for full EMD refinement — still a usable ranking, but worth
// surfacing to clients that may retry with a longer budget. On a sharded
// backend Degraded also marks partial answers: ShardsFailed of ShardsTotal
// shards did not contribute (errored, blew their budget, or sat behind an
// open breaker), so the ranking is correct over the surviving shards'
// videos and silent about the rest.
type RecommendResponse struct {
	Results      []videorec.Recommendation `json:"results"`
	Degraded     bool                      `json:"degraded"`
	ViewVersion  uint64                    `json:"viewVersion"`
	ShardsFailed int                       `json:"shardsFailed,omitempty"`
	ShardsTotal  int                       `json:"shardsTotal,omitempty"`
}

func (c ClipJSON) clip() videorec.Clip {
	out := videorec.Clip{
		ID:             c.ID,
		Title:          c.Title,
		FPS:            c.FPS,
		NominalSeconds: c.NominalSeconds,
		Owner:          c.Owner,
		Commenters:     c.Commenters,
	}
	for _, f := range c.Frames {
		out.Frames = append(out.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
	}
	return out
}

// Handler returns the service mux:
//
//	POST /videos            ingest a clip (ClipJSON body)
//	POST /build             build the social machinery
//	GET  /recommend?id=&k=  recommend for a stored clip
//	POST /recommend?k=      recommend for an ad-hoc clip (ClipJSON body)
//	POST /updates           apply new comments ({"videoID": ["user", ...]})
//	POST /snapshot          persist the engine to the configured path
//	GET  /stats             engine statistics
//	GET  /healthz           process liveness (always 200)
//	GET  /readyz            serving readiness (503 until every check passes)
//	GET  /replication/snapshot   bootstrap snapshot + cursor headers
//	GET  /replication/tail       long-poll journal entries after a cursor
//
// Recommendation routes run behind the admission controller and the
// per-request deadline; every route runs behind panic recovery. Mutating
// routes run behind the read-only gate (replicas reject them with 403).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /videos", s.mutating(s.handleAddVideo))
	mux.HandleFunc("POST /build", s.mutating(s.handleBuild))
	// Deadline OUTSIDE admission: the query budget must cover queue wait so
	// the overload controller can evict requests that can no longer finish.
	mux.HandleFunc("GET /recommend", s.withDeadline(s.admit(s.handleRecommend)))
	mux.HandleFunc("POST /recommend", s.withDeadline(s.admit(s.handleRecommendClip)))
	mux.HandleFunc("POST /updates", s.mutating(s.handleUpdates))
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /shards/drain", s.mutating(s.handleDrainShard))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /replication/snapshot", s.handleReplicationSnapshot)
	mux.HandleFunc("GET /replication/tail", s.handleReplicationTail)
	return s.recoverPanics(mux)
}

// errReadOnly answers mutating requests on a read-only (replica) server.
var errReadOnly = errors.New("server: read-only replica — mutations arrive via replication only")

// mutating gates a state-changing handler behind Config.ReadOnly.
func (s *Server) mutating(next http.HandlerFunc) http.HandlerFunc {
	if !s.cfg.ReadOnly {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusForbidden, errReadOnly)
	}
}

func (s *Server) handleAddVideo(w http.ResponseWriter, r *http.Request) {
	var c ClipJSON
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode clip: %w", err))
		return
	}
	if err := s.eng.Add(c.clip()); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"id": c.ID, "indexed": true, "viewVersion": s.eng.Version()})
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	s.eng.Build()
	writeJSON(w, map[string]any{"subCommunities": s.eng.SubCommunities(), "viewVersion": s.eng.Version()})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if err := faults.Inject(faults.ServerRecommend); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing id parameter"))
		return
	}
	k, err := s.queryK(r, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	version := s.eng.Version()
	if recs, ok := s.cache.get(cacheKey(version, id, k)); ok {
		s.queries.Add(1)
		writeJSON(w, RecommendResponse{Results: recs, ViewVersion: version})
		return
	}
	// Miss: compute against the live view — coalesced with concurrent
	// queries when batching is on — and store under the version that
	// actually answered (a mutation may have landed since the lookup).
	recs, meta, err := s.recommendCtx(r.Context(), id, k)
	if err != nil {
		s.queryError(w, err)
		return
	}
	if meta.Degraded {
		// Degraded answers are deadline (or shard-failure) artifacts, not
		// view state — caching them would serve coarse or partial results to
		// clients with generous budgets against a healthy fleet.
		s.degraded.Add(1)
	} else {
		s.cache.put(cacheKey(meta.ViewVersion, id, k), recs)
	}
	s.queries.Add(1)
	writeJSON(w, RecommendResponse{
		Results: recs, Degraded: meta.Degraded, ViewVersion: meta.ViewVersion,
		ShardsFailed: meta.ShardsFailed, ShardsTotal: meta.ShardsTotal,
	})
}

// recommendCtx routes one stored-clip query through the coalescer when
// batching is enabled, or straight to the backend otherwise.
func (s *Server) recommendCtx(ctx context.Context, clipID string, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error) {
	if s.batch != nil {
		return s.batch.recommend(ctx, clipID, topK)
	}
	return s.eng.RecommendCtx(ctx, clipID, topK)
}

// queryError maps a recommendation failure to its HTTP response. Quorum
// loss is an overload-shaped outcome — the shards may be recovering behind
// their breakers — so like shed requests it carries the load-derived
// Retry-After hint, but its body says "quorum_lost" where a shed says
// "shed": the client's correct reaction differs (back off versus maybe
// route elsewhere), so the two 503s must not be conflated.
func (s *Server) queryError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retrySecs()))
		if errors.Is(err, shard.ErrQuorum) {
			httpErrorReason(w, status, "quorum_lost", err)
			return
		}
	}
	httpError(w, status, err)
}

func (s *Server) handleRecommendClip(w http.ResponseWriter, r *http.Request) {
	var c ClipJSON
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode clip: %w", err))
		return
	}
	k, err := s.queryK(r, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	recs, meta, err := s.eng.RecommendClipCtx(r.Context(), c.clip(), k)
	if err != nil {
		s.queryError(w, err)
		return
	}
	if meta.Degraded {
		s.degraded.Add(1)
	}
	s.queries.Add(1)
	writeJSON(w, RecommendResponse{
		Results: recs, Degraded: meta.Degraded, ViewVersion: meta.ViewVersion,
		ShardsFailed: meta.ShardsFailed, ShardsTotal: meta.ShardsTotal,
	})
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var comments map[string][]string
	if err := json.NewDecoder(r.Body).Decode(&comments); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode comments: %w", err))
		return
	}
	sum, err := s.eng.ApplyUpdates(comments)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.lastUpdate.Store(&sum)
	writeJSON(w, sum)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		httpError(w, http.StatusConflict, errors.New("no snapshot path configured"))
		return
	}
	// Serialize snapshots: concurrent POSTs would race on the target path's
	// temp files and hold the engine's writer lock back to back for nothing.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if r.URL.Query().Get("compact") != "" {
		// Snapshot + trim the journal to a marker at the snapshot's cursor,
		// atomically: replicas whose cursor predates the trim heal via 410.
		if err := s.eng.SaveFileAndCompact(s.cfg.SnapshotPath); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		_, _, base, _ := s.eng.JournalStatus()
		writeJSON(w, map[string]any{"saved": s.cfg.SnapshotPath, "compactedTo": base})
		return
	}
	if err := s.eng.SaveFile(s.cfg.SnapshotPath); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{"saved": s.cfg.SnapshotPath})
}

// ShardStats is one shard's slice of /stats: its own view version,
// corpus size, journal cursor, and — on a sharded backend — its circuit
// breaker's health. A single-engine deployment reports exactly one, with no
// breaker fields.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Videos      int    `json:"videos"`
	ViewVersion uint64 `json:"viewVersion"`
	AppliedSeq  uint64 `json:"appliedSeq"`
	JournalPath string `json:"journalPath,omitempty"`
	JournalBase uint64 `json:"journalBase"`
	JournalSeq  uint64 `json:"journalSeq"`

	Breaker          shard.BreakerState `json:"breaker,omitempty"`
	ConsecutiveFails int                `json:"consecutiveFails,omitempty"`
	Failures         uint64             `json:"failures,omitempty"`
	BreakerOpens     uint64             `json:"breakerOpens,omitempty"`
	RetryInMs        int64              `json:"retryInMs,omitempty"`

	// BatchDispatches counts batched fan-out calls this shard has executed
	// since its topology generation was published; absent on a single engine.
	BatchDispatches uint64 `json:"batchDispatches,omitempty"`
}

// healthReporter is the optional per-shard breaker surface (the router).
type healthReporter interface {
	Health() []shard.ShardHealth
}

// faultCounter is the optional router-level fault-counter surface.
type faultCounter interface {
	FaultCounters() (shardFail, breakerOpen, quorumLost uint64)
}

// quorumReporter is the optional quorum surface: required is the minimum
// number of answering shards for a query to succeed, healthy counts shards
// whose breakers are closed (half-open shards refuse normal dispatch while
// their probe is in flight, so they are not healthy for serving).
type quorumReporter interface {
	Quorum() (required, healthy int)
}

// batchDispatchReporter is the optional per-shard batch-dispatch surface
// (the router).
type batchDispatchReporter interface {
	BatchDispatches() []uint64
}

// graphReporter is the optional user-interest-graph size surface; both the
// single engine and the router implement it.
type graphReporter interface {
	GraphStats() (users, edges, overlay int)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.stats()
	_, _, journalBase, journalSeq := s.eng.JournalStatus()
	var health []shard.ShardHealth
	if hr, ok := s.eng.(healthReporter); ok {
		health = hr.Health()
	}
	var batchDispatches []uint64
	if bd, ok := s.eng.(batchDispatchReporter); ok {
		batchDispatches = bd.BatchDispatches()
	}
	shards := make([]ShardStats, 0, s.eng.NumShards())
	for i := 0; i < s.eng.NumShards(); i++ {
		e, ok := s.eng.ShardEngine(i)
		if !ok {
			continue
		}
		_, jpath, jbase, jseq := e.JournalStatus()
		st := ShardStats{
			Shard:       i,
			Videos:      e.Len(),
			ViewVersion: e.Version(),
			AppliedSeq:  e.AppliedSeq(),
			JournalPath: jpath,
			JournalBase: jbase,
			JournalSeq:  jseq,
		}
		if i < len(health) {
			h := health[i]
			st.Breaker = h.Breaker
			st.ConsecutiveFails = h.ConsecutiveFails
			st.Failures = h.Failures
			st.BreakerOpens = h.Opens
			st.RetryInMs = h.RetryInMs
		}
		if i < len(batchDispatches) {
			st.BatchDispatches = batchDispatches[i]
		}
		shards = append(shards, st)
	}
	var shardFail, breakerOpen, quorumLost uint64
	if fc, ok := s.eng.(faultCounter); ok {
		shardFail, breakerOpen, quorumLost = fc.FaultCounters()
	}
	batched, flushes, bypass := s.batch.stats()
	var avgBatch float64
	if flushes > 0 {
		avgBatch = float64(batched) / float64(flushes)
	}
	var graphUsers, graphEdges, graphOverlay int
	if gr, ok := s.eng.(graphReporter); ok {
		graphUsers, graphEdges, graphOverlay = gr.GraphStats()
	}
	var lastMaintMs float64
	if lu := s.lastUpdate.Load(); lu != nil {
		lastMaintMs = float64(lu.MaintenanceDuration) / float64(time.Millisecond)
	}
	ov := s.ctl.Snapshot()
	writeJSON(w, map[string]any{
		// Aggregates. viewVersion is the backend's fingerprint: a single
		// engine's monotonic counter, or the router's fold of (epoch, every
		// shard version); journalBase/journalSeq aggregate min-base/max-head
		// across shards.
		"videos":          s.eng.Len(),
		"subCommunities":  s.eng.SubCommunities(),
		"viewVersion":     s.eng.Version(),
		"appliedSeq":      s.eng.AppliedSeq(),
		"journalBase":     journalBase,
		"journalSeq":      journalSeq,
		"shards":          shards,
		"readOnly":        s.cfg.ReadOnly,
		"queriesServed":   s.queries.Load(),
		"cacheHits":       hits,
		"cacheMisses":     misses,
		"cacheSize":       size,
		"inFlight":        ov.InFlight,
		"shedTotal":       s.shed.Load(),
		"degradedTotal":   s.degraded.Load(),
		"panicsRecovered": s.panics.Load(),
		// Overload control: the live adaptive limit, queue state, and
		// brownout activity. All zero when admission control is off.
		"limit":             ov.Limit,
		"limitProbes":       ov.ProbeTotal,
		"limitBackoffs":     ov.BackoffTotal,
		"queueDepth":        ov.QueueDepth,
		"peakQueue":         ov.PeakQueue,
		"queuedServedTotal": ov.QueuedServed,
		"queueWaitP50Ms":    ov.QueueWaitP50Ms,
		"queueWaitP99Ms":    ov.QueueWaitP99Ms,
		"queueEvictedTotal": ov.EvictedTotal,
		"brownoutTier":      ov.Tier,
		"brownoutTotal":     s.brownout.Load(),
		// Batch coalescing: all zero unless Config.BatchWindow is set.
		"batchedTotal":     batched,
		"batchFlushes":     flushes,
		"avgBatchSize":     avgBatch,
		"batchBypassTotal": bypass,
		// Shard fault counters: zero on a single-engine backend.
		"shardFailTotal":   shardFail,
		"breakerOpenTotal": breakerOpen,
		"quorumLostTotal":  quorumLost,
		// User-interest graph size (identical on every shard) and the
		// maintenance wall time of the last POST /updates batch.
		"graphUsers":        graphUsers,
		"graphEdges":        graphEdges,
		"graphOverlay":      graphOverlay,
		"lastMaintenanceMs": lastMaintMs,
	})
}

// handleDrainShard takes one shard out of a sharded backend: ingest to it
// stops, its journal flushes and closes, and its videos re-intern into the
// surviving shards (rankings are placement-independent, so queries are
// unaffected). 409 on a backend that cannot drain (single engine, or the
// last shard).
func (s *Server) handleDrainShard(w http.ResponseWriter, r *http.Request) {
	d, ok := s.eng.(Drainer)
	if !ok {
		httpError(w, http.StatusConflict, errors.New("backend is not sharded — nothing to drain"))
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed shard parameter: %v", err))
		return
	}
	moved, err := d.DrainShard(shard)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]any{
		"drained":     shard,
		"moved":       moved,
		"shards":      s.eng.NumShards(),
		"viewVersion": s.eng.Version(),
	})
}

// statusFor maps engine errors to HTTP statuses. Context errors are serving
// outcomes, not engine faults: a canceled client maps to 499 (nginx
// convention; nobody reads it) and an expired deadline that could not
// degrade maps to 504. Quorum loss must be checked before the context
// errors: the quorum error wraps the per-shard causes, which can include
// budget timeouts (context.DeadlineExceeded), and the client should see the
// retryable 503, not a 504 blamed on its own deadline.
func statusFor(err error) int {
	switch {
	case errors.Is(err, shard.ErrQuorum):
		return http.StatusServiceUnavailable
	case errors.Is(err, videorec.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, videorec.ErrNotBuilt):
		return http.StatusConflict
	case errors.Is(err, videorec.ErrNoFrames), errors.Is(err, videorec.ErrEmptyID):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// queryK parses the k query parameter: absent uses def, malformed or
// non-positive values are a 400-worthy error (they were previously swallowed
// into the default, masking client bugs), and values above the configured
// maximum clamp to it.
func (s *Server) queryK(r *http.Request, def int) (int, error) {
	v := r.URL.Query().Get("k")
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("malformed k parameter %q: %v", v, err)
	}
	if n <= 0 {
		return 0, fmt.Errorf("k parameter must be positive, got %d", n)
	}
	if n > s.cfg.MaxK {
		return s.cfg.MaxK, nil
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// httpErrorReason is httpError plus a machine-readable reason tag, for
// statuses that would otherwise be ambiguous (a shed 503 versus a
// quorum-lost 503, a deadline 504 versus a queue-evicted 504).
func httpErrorReason(w http.ResponseWriter, status int, reason string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "reason": reason})
}
