// Package server exposes the recommender as a JSON-over-HTTP service — the
// online deployment shape of the paper's system: videos are ingested as
// they are uploaded, anonymous viewers ask for recommendations against the
// clip they are watching, and comment traffic streams through the
// incremental maintenance path.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"videorec"
)

// Server wraps an engine with HTTP handlers. Create with New, mount
// Handler().
type Server struct {
	eng          *videorec.Engine
	snapshotPath string
	queries      atomic.Int64
	cache        *resultCache
}

// New wraps the engine. snapshotPath, when non-empty, is where POST
// /snapshot persists the engine. Stored-clip recommendations are cached in
// an LRU keyed by the engine's view version: mutations publish a new view
// (bumping the version) instead of purging, so hits against the live view
// keep being served while entries of lapsed views age out of the LRU.
func New(eng *videorec.Engine, snapshotPath string) *Server {
	return &Server{eng: eng, snapshotPath: snapshotPath, cache: newResultCache(512)}
}

// ClipJSON is the wire form of videorec.Clip.
type ClipJSON struct {
	ID             string      `json:"id"`
	Title          string      `json:"title,omitempty"`
	FPS            float64     `json:"fps,omitempty"`
	NominalSeconds float64     `json:"nominalSeconds,omitempty"`
	Frames         []FrameJSON `json:"frames"`
	Owner          string      `json:"owner,omitempty"`
	Commenters     []string    `json:"commenters,omitempty"`
}

// FrameJSON is the wire form of one frame.
type FrameJSON struct {
	W   int       `json:"w"`
	H   int       `json:"h"`
	Pix []float64 `json:"pix"`
}

func (c ClipJSON) clip() videorec.Clip {
	out := videorec.Clip{
		ID:             c.ID,
		Title:          c.Title,
		FPS:            c.FPS,
		NominalSeconds: c.NominalSeconds,
		Owner:          c.Owner,
		Commenters:     c.Commenters,
	}
	for _, f := range c.Frames {
		out.Frames = append(out.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
	}
	return out
}

// Handler returns the service mux:
//
//	POST /videos            ingest a clip (ClipJSON body)
//	POST /build             build the social machinery
//	GET  /recommend?id=&k=  recommend for a stored clip
//	POST /recommend?k=      recommend for an ad-hoc clip (ClipJSON body)
//	POST /updates           apply new comments ({"videoID": ["user", ...]})
//	POST /snapshot          persist the engine to the configured path
//	GET  /stats             engine statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /videos", s.handleAddVideo)
	mux.HandleFunc("POST /build", s.handleBuild)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("POST /recommend", s.handleRecommendClip)
	mux.HandleFunc("POST /updates", s.handleUpdates)
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handleAddVideo(w http.ResponseWriter, r *http.Request) {
	var c ClipJSON
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode clip: %w", err))
		return
	}
	if err := s.eng.Add(c.clip()); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"id": c.ID, "indexed": true, "viewVersion": s.eng.Version()})
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	s.eng.Build()
	writeJSON(w, map[string]any{"subCommunities": s.eng.SubCommunities(), "viewVersion": s.eng.Version()})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing id parameter"))
		return
	}
	k := queryInt(r, "k", 10)
	if recs, ok := s.cache.get(cacheKey(s.eng.Version(), id, k)); ok {
		s.queries.Add(1)
		writeJSON(w, recs)
		return
	}
	// Miss: compute against the live view and store under the version that
	// actually answered (a mutation may have landed since the lookup).
	recs, version, err := s.eng.RecommendVersioned(id, k)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.cache.put(cacheKey(version, id, k), recs)
	s.queries.Add(1)
	writeJSON(w, recs)
}

func (s *Server) handleRecommendClip(w http.ResponseWriter, r *http.Request) {
	var c ClipJSON
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode clip: %w", err))
		return
	}
	k := queryInt(r, "k", 10)
	recs, err := s.eng.RecommendClip(c.clip(), k)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.queries.Add(1)
	writeJSON(w, recs)
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var comments map[string][]string
	if err := json.NewDecoder(r.Body).Decode(&comments); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode comments: %w", err))
		return
	}
	sum, err := s.eng.ApplyUpdates(comments)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, sum)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		httpError(w, http.StatusConflict, errors.New("no snapshot path configured"))
		return
	}
	if err := s.eng.SaveFile(s.snapshotPath); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{"saved": s.snapshotPath})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.stats()
	writeJSON(w, map[string]any{
		"videos":         s.eng.Len(),
		"subCommunities": s.eng.SubCommunities(),
		"viewVersion":    s.eng.Version(),
		"queriesServed":  s.queries.Load(),
		"cacheHits":      hits,
		"cacheMisses":    misses,
		"cacheSize":      size,
	})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, videorec.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, videorec.ErrNotBuilt):
		return http.StatusConflict
	case errors.Is(err, videorec.ErrNoFrames), errors.Is(err, videorec.ErrEmptyID):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func queryInt(r *http.Request, key string, def int) int {
	if v := r.URL.Query().Get(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
