package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"videorec"
	"videorec/internal/faults"
)

func newResilientServer(t testing.TB, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewWithConfig(videorec.New(videorec.Options{SubCommunities: 6}), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{videorec.ErrNotFound, http.StatusNotFound},
		{fmt.Errorf("wrap: %w", videorec.ErrNotFound), http.StatusNotFound},
		{videorec.ErrNotBuilt, http.StatusConflict},
		{videorec.ErrNoFrames, http.StatusBadRequest},
		{videorec.ErrEmptyID, http.StatusBadRequest},
		{context.Canceled, StatusClientClosedRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// Malformed or non-positive k must be a 400, not a silent fallback to the
// default; oversized k clamps to the configured maximum.
func TestQueryKValidation(t *testing.T) {
	ts, _ := newResilientServer(t, Config{MaxK: 2})
	populate(t, ts)

	for _, bad := range []string{"abc", "-3", "0", "1.5"} {
		resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("k=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Oversized k clamps to MaxK instead of erroring.
	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped k: status %d", resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) > 2 {
		t.Errorf("k=50 returned %d results, want clamped to MaxK=2", len(rr.Results))
	}
	// Absent k still uses the default.
	resp2, err := http.Get(ts.URL + "/recommend?id=clip-0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("default k: status %d", resp2.StatusCode)
	}
}

// With the in-flight limit and queue saturated, excess requests are shed
// with 503 + Retry-After instead of queueing unboundedly.
func TestLoadSheddingRetryAfter(t *testing.T) {
	defer faults.Reset()
	ts, srv := newResilientServer(t, Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	populate(t, ts)
	// Park the in-flight slot: the armed handler sleeps inside the slot.
	faults.Arm(faults.ServerRecommend, faults.Latency(400*time.Millisecond))

	const clients = 4
	statuses := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger slightly so the first request reliably claims the slot.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	shed, served := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusServiceUnavailable:
			shed++
			if retryAfter[i] != "2" {
				t.Errorf("shed response %d: Retry-After = %q, want \"2\"", i, retryAfter[i])
			}
		case http.StatusOK:
			served++
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	// 1 in flight + 1 queued = 2 served; the other 2 shed.
	if shed != 2 || served != 2 {
		t.Errorf("served=%d shed=%d, want 2/2 (statuses %v)", served, shed, statuses)
	}
	if srv.shed.Load() != 2 {
		t.Errorf("shed counter = %d, want 2", srv.shed.Load())
	}
}

// A query deadline inside the engine's degrade margin answers 200 with
// degraded: true — coarse SAR results — never a timeout error; degraded
// answers are not cached.
func TestDegradedResponseNearDeadline(t *testing.T) {
	ts, srv := newResilientServer(t, Config{QueryTimeout: 15 * time.Millisecond})
	populate(t, ts)

	for round := 0; round < 2; round++ {
		resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
		if err != nil {
			t.Fatal(err)
		}
		var rr RecommendResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d, want 200", round, resp.StatusCode)
		}
		if !rr.Degraded {
			t.Fatalf("round %d: response not flagged degraded", round)
		}
		if len(rr.Results) == 0 {
			t.Fatalf("round %d: degraded response empty", round)
		}
		for _, r := range rr.Results {
			if r.Content != 0 {
				t.Errorf("degraded result %s has content score %g (EMD should be skipped)", r.VideoID, r.Content)
			}
		}
	}
	if got := srv.degraded.Load(); got != 2 {
		t.Errorf("degraded counter = %d, want 2 (degraded answers must not be cached)", got)
	}
	if hits, _, _ := srv.cache.stats(); hits != 0 {
		t.Errorf("cache hits = %d, want 0 — a degraded answer was cached", hits)
	}
}

// A handler panic becomes a 500 and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	defer faults.Reset()
	ts, srv := newResilientServer(t, Config{})
	populate(t, ts)
	faults.Arm(faults.ServerRecommend, faults.PanicEvery(1, "injected handler panic"))
	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	if srv.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", srv.panics.Load())
	}
	faults.Reset()
	resp2, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("server dead after recovered panic: status %d", resp2.StatusCode)
	}
}

// A client abandoning a slow request must leave the engine fully
// serviceable (the core-level test pins the promptness bound).
func TestClientCancelLeavesServerServiceable(t *testing.T) {
	defer faults.Reset()
	ts, _ := newResilientServer(t, Config{})
	populate(t, ts)
	faults.Arm(faults.RefineScore, faults.Latency(30*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/recommend?id=clip-1&k=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Log("request finished before the cancel landed; engine check still applies")
	}
	faults.Reset()

	resp, err := http.Get(ts.URL + "/recommend?id=clip-1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel status %d, want 200", resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) == 0 {
		t.Fatal("engine returned no results after a cancelled request")
	}
}

// /updates error paths: not built → 409, journal append failure → 500.
func TestUpdatesErrorPaths(t *testing.T) {
	defer faults.Reset()
	ts, srv := newResilientServer(t, Config{})
	// Before build: 409.
	body, _ := json.Marshal(map[string][]string{"v": {"u"}})
	if resp := post(t, ts.URL+"/updates", body); resp.StatusCode != http.StatusConflict {
		t.Errorf("updates before build: status %d, want 409", resp.StatusCode)
	}
	populate(t, ts)
	// Journal append failure: 500, and the engine state is not mutated.
	if err := srv.eng.(*videorec.Engine).AttachJournal(filepath.Join(t.TempDir(), "w.wal")); err != nil {
		t.Fatal(err)
	}
	versionBefore := srv.eng.Version()
	faults.Arm(faults.JournalAppend, faults.Error(nil))
	if resp := post(t, ts.URL+"/updates", body); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("journal fault: status %d, want 500", resp.StatusCode)
	}
	if srv.eng.Version() != versionBefore {
		t.Error("failed journal append still published a new view")
	}
	faults.Reset()
	if resp := post(t, ts.URL+"/updates", body); resp.StatusCode != http.StatusOK {
		t.Errorf("post-fault updates: status %d, want 200", resp.StatusCode)
	}
}

// /snapshot error paths: save failure → 500, then recovery; concurrent
// snapshots serialize rather than clobbering each other's temp files.
func TestSnapshotErrorAndSerialization(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "srv.snap")
	ts, _ := newResilientServer(t, Config{SnapshotPath: path})
	populate(t, ts)

	faults.Arm(faults.SnapshotCommit, faults.Error(nil))
	if resp := post(t, ts.URL+"/snapshot", nil); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failing snapshot: status %d, want 500", resp.StatusCode)
	}
	faults.Reset()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/snapshot", "application/json", nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent snapshot: %s", e)
	}
	if _, err := videorec.LoadFile(path); err != nil {
		t.Fatalf("snapshot unloadable after concurrent saves: %v", err)
	}
}

// Chaos: concurrent queries, mutations, client cancellations, snapshots and
// injected faults (latency, panics, journal errors) hammer the server; run
// under -race. The server must never wedge, and once the faults clear it
// must answer a clean query.
func TestChaosConcurrentTrafficWithFaults(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "chaos.snap")
	ts, srv := newResilientServer(t, Config{
		SnapshotPath: path,
		MaxInFlight:  4,
		MaxQueue:     4,
		QueryTimeout: 80 * time.Millisecond,
		RetryAfter:   1 * time.Second,
	})
	populate(t, ts)
	if err := srv.eng.(*videorec.Engine).AttachJournal(filepath.Join(t.TempDir(), "chaos.wal")); err != nil {
		t.Fatal(err)
	}

	faults.Arm(faults.RefineScore, faults.Latency(time.Millisecond))
	faults.Arm(faults.ServerRecommend, faults.PanicEvery(23, "chaos panic"))
	faults.Arm(faults.JournalAppend, faults.FailN(3, nil))
	faults.Arm(faults.SnapshotCommit, faults.FailN(2, nil))

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusServiceUnavailable:  true,
		http.StatusInternalServerError: true, // injected panics and journal faults
		http.StatusGatewayTimeout:      true,
		StatusClientClosedRequest:      true,
	}

	var wg sync.WaitGroup
	// Query workers, some with client-side cancellation.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("clip-%d", rng.Intn(6))
				ctx := context.Background()
				if rng.Intn(3) == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(10))*time.Millisecond)
					defer cancel()
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/recommend?id="+id+"&k=3", nil)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue // client-side cancellation
				}
				if !allowed[resp.StatusCode] {
					t.Errorf("query worker %d: unexpected status %d", w, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	// Mutation workers: comment updates stream through maintenance.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 8; i++ {
				batch := map[string][]string{
					fmt.Sprintf("clip-%d", rng.Intn(6)): {fmt.Sprintf("chaos-user-%d-%d", w, i), "ann"},
				}
				body, _ := json.Marshal(batch)
				resp, err := http.Post(ts.URL+"/updates", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
					t.Errorf("mutation worker %d: status %d", w, resp.StatusCode)
				}
				resp.Body.Close()
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}
	// Snapshot worker: persistence races with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, err := http.Post(ts.URL+"/snapshot", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
				t.Errorf("snapshot worker: status %d", resp.StatusCode)
			}
			resp.Body.Close()
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()

	// Faults cleared: the engine must answer a clean, non-degraded query.
	faults.Reset()
	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos query: status %d, want 200", resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) == 0 {
		t.Fatal("post-chaos query returned no results")
	}
	// The snapshot that survived the chaos must be loadable.
	if _, err := videorec.LoadFile(path); err != nil {
		t.Fatalf("post-chaos snapshot unloadable: %v", err)
	}
}
