package server

import (
	"container/list"
	"sync"

	"videorec"
)

// resultCache is a small LRU over recommendation lists, keyed by
// "clipID\x00topK". Every mutation endpoint purges it wholesale: updates can
// re-rank anything, and correctness beats cleverness at this size.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	at  map[string]*list.Element

	hits, misses int64
}

type cacheItem struct {
	key  string
	recs []videorec.Recommendation
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 128
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		at:  make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) ([]videorec.Recommendation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.at[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheItem).recs, true
}

func (c *resultCache) put(key string, recs []videorec.Recommendation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.at[key]; ok {
		el.Value.(*cacheItem).recs = recs
		c.ll.MoveToFront(el)
		return
	}
	c.at[key] = c.ll.PushFront(&cacheItem{key: key, recs: recs})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.at, oldest.Value.(*cacheItem).key)
	}
}

func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.at = make(map[string]*list.Element)
}

func (c *resultCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
