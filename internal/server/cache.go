package server

import (
	"container/list"
	"fmt"
	"sync"

	"videorec"
)

// resultCache is a small LRU over recommendation lists, keyed by
// "viewVersion\x00clipID\x00topK". Keys embed the version of the engine view
// a result was computed from, so mutations never need to purge anything:
// a published mutation bumps the view version, new queries key under the new
// version and miss once, and entries of lapsed views age out of the LRU tail
// as fresh results displace them.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	at  map[string]*list.Element

	hits, misses int64
}

// cacheKey builds the version-qualified lookup key for one stored-clip
// recommendation.
func cacheKey(version uint64, clipID string, topK int) string {
	return fmt.Sprintf("%d\x00%s\x00%d", version, clipID, topK)
}

type cacheItem struct {
	key  string
	recs []videorec.Recommendation
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 128
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		at:  make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) ([]videorec.Recommendation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.at[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheItem).recs, true
}

func (c *resultCache) put(key string, recs []videorec.Recommendation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.at[key]; ok {
		el.Value.(*cacheItem).recs = recs
		c.ll.MoveToFront(el)
		return
	}
	c.at[key] = c.ll.PushFront(&cacheItem{key: key, recs: recs})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.at, oldest.Value.(*cacheItem).key)
	}
}

func (c *resultCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
