package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"videorec/internal/overload"
)

// The admission path, back to front: withDeadline stamps the per-request
// query timeout FIRST, so the deadline is visible while the request queues
// — queue wait burns real budget, which is exactly what lets the
// deadline-aware queue evict requests that can no longer make it. admit
// then runs the request through the overload controller: the adaptive
// concurrency limiter, the bounded wait queue, and — under load — the
// brownout tiers that shrink the request's deadline into the engine's
// degrade margin so it answers coarse instead of late.

// overloadStatus maps an admission failure to its HTTP response shape:
// status code, machine-readable reason (distinct 503 bodies: a shed 503
// must not read like a quorum-lost 503), whether the response carries the
// load-derived Retry-After hint, and whether it counts as a true shed.
// Queue-wait context death is the CALLER's outcome, not overload: a
// canceled client maps to 499 and an expired deadline to 504, and neither
// increments the shed counter.
func overloadStatus(err error) (status int, reason string, retryAfter, shed bool) {
	switch {
	case errors.Is(err, overload.ErrShed):
		return http.StatusServiceUnavailable, "shed", true, true
	case errors.Is(err, overload.ErrDoomed):
		return http.StatusGatewayTimeout, "queue_evicted", true, false
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "client_closed", false, false
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline", false, false
	default:
		return http.StatusInternalServerError, "", false, false
	}
}

// admit wraps the expensive query handlers with the overload controller:
// requests run when a slot is free, wait (deadline-aware, adaptively LIFO
// under sustained overload) when the limiter is full, and are refused with
// a load-derived Retry-After when even waiting cannot help. Once admitted,
// the brownout tier may shrink the request's deadline into the engine's
// degrade margin, trading answer quality for staying inside deadlines. A
// nil controller (MaxInFlight <= 0) admits everything.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	if s.ctl == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, waited, err := s.ctl.Acquire(r.Context())
		if err != nil {
			status, reason, retry, shed := overloadStatus(err)
			if shed {
				s.shed.Add(1)
			}
			if retry {
				w.Header().Set("Retry-After", strconv.Itoa(s.retrySecs()))
			}
			if reason != "" {
				httpErrorReason(w, status, reason, err)
			} else {
				httpError(w, status, err)
			}
			return
		}
		defer release()
		if s.cfg.Brownout {
			// Brownout: tier 1 degrades the requests that already paid a
			// queue wait (they are the marginal load), tier 2 degrades
			// everyone. Shrinking the deadline into the engine's degrade
			// margin reuses the existing coarse path end to end — through
			// the coalescer too, since each member's context rides into the
			// batch and the per-item degrade decision is made against it.
			if tier := s.ctl.Tier(); tier >= 2 || (tier >= 1 && waited > 0) {
				s.brownout.Add(1)
				ctx, cancel := context.WithDeadline(r.Context(), time.Now().Add(s.cfg.BrownoutMargin))
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next(w, r)
	}
}

// retrySecs is the Retry-After hint for refusals: load-derived (queue depth
// over drain rate) when the controller is live, the configured constant
// otherwise.
func (s *Server) retrySecs() int {
	if s.ctl != nil {
		return s.ctl.RetryAfterSeconds()
	}
	return retryAfterSeconds(s.cfg.RetryAfter)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// withDeadline attaches the per-request query timeout to the request
// context. It runs OUTSIDE admit, so the deadline covers queueing as well
// as execution: the overload controller needs the remaining budget to
// decide whether queueing the request can still produce a useful answer.
func (s *Server) withDeadline(next http.HandlerFunc) http.HandlerFunc {
	if s.cfg.QueryTimeout <= 0 {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// recoverPanics converts a handler panic into a 500 response and keeps the
// process alive. net/http would also swallow the panic (per-connection
// recover), but without this middleware the client sees a torn connection
// instead of an error body, and nothing counts the event.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The idiomatic "tear this connection down" signal —
					// net/http handles it; swallowing it here would append
					// an error body to a deliberately aborted response.
					panic(p)
				}
				s.panics.Add(1)
				log.Printf("server: recovered panic in %s %s: %v", r.Method, r.URL.Path, p)
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}
