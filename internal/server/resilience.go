package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// errShed is returned by the admission controller when both the in-flight
// slots and the wait queue are full — the request must be shed, not queued.
var errShed = errors.New("server: overloaded, request shed")

// limiter is a semaphore-based admission controller with a bounded wait
// queue: up to cap(slots) requests run concurrently, up to maxQueue more
// wait for a slot, and everything beyond that is shed immediately. Bounding
// the queue is the point — under a sustained spike an unbounded queue turns
// into latency debt that is repaid to clients who already left.
type limiter struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newLimiter(maxInFlight, maxQueue int) *limiter {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success; errShed when the
// queue is full; ctx.Err() when the caller's context dies while queued.
func (l *limiter) acquire(ctx context.Context) (func(), error) {
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return nil, errShed
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// inFlight reports the number of currently admitted requests.
func (l *limiter) inFlight() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// admit wraps the expensive query handlers with the admission controller:
// shed requests get 503 with a Retry-After hint and are never queued
// unboundedly. A nil limiter (MaxInFlight <= 0) admits everything.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	if s.lim == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.lim.acquire(r.Context())
		if err != nil {
			s.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			httpError(w, http.StatusServiceUnavailable, errShed)
			return
		}
		defer release()
		next(w, r)
	}
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// withDeadline attaches the per-request query timeout to the request
// context, so the deadline propagates through Engine.RecommendCtx into the
// EMD refinement workers.
func (s *Server) withDeadline(next http.HandlerFunc) http.HandlerFunc {
	if s.cfg.QueryTimeout <= 0 {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// recoverPanics converts a handler panic into a 500 response and keeps the
// process alive. net/http would also swallow the panic (per-connection
// recover), but without this middleware the client sees a torn connection
// instead of an error body, and nothing counts the event.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The idiomatic "tear this connection down" signal —
					// net/http handles it; swallowing it here would append
					// an error body to a deliberately aborted response.
					panic(p)
				}
				s.panics.Add(1)
				log.Printf("server: recovered panic in %s %s: %v", r.Method, r.URL.Path, p)
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}
