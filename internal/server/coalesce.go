package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"videorec"
)

// batcher coalesces concurrent stored-clip queries into backend batches:
// behind the admission semaphore, in-flight queries against the same view
// version gather inside a sub-millisecond window (Config.BatchWindow, capped
// at Config.MaxBatch) and execute as ONE RecommendBatchCtx call, which
// shares candidate generation and deduplicates identical (clip, k) requests.
// A lone query — no other query in flight and no batch forming — bypasses
// the window entirely: single-query latency is untouched.
//
// One batch forms at a time, keyed by the backend version at join time. A
// query observing a different version flushes the forming batch immediately
// (its members were promised answers from the view they joined against) and
// starts a fresh one.
// batchBackend is the slice of Backend the coalescer drives — narrowed so
// tests can substitute a stub with controllable timing.
type batchBackend interface {
	Version() uint64
	RecommendCtx(ctx context.Context, clipID string, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error)
	RecommendBatchCtx(ctx context.Context, reqs []videorec.BatchRequest) []videorec.BatchAnswer
}

type batcher struct {
	backend  batchBackend
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending *pendingBatch

	inFlight atomic.Int64 // queries currently inside recommend()

	batchedTotal atomic.Int64 // queries answered through a batch
	batchFlushes atomic.Int64 // batches executed
	bypassTotal  atomic.Int64 // queries that took the serial path
}

// pendingBatch is the batch currently forming. Answer channels are buffered
// so a member that gave up (its context died while waiting) never blocks the
// flusher's delivery.
type pendingBatch struct {
	version uint64
	reqs    []videorec.BatchRequest
	chans   []chan videorec.BatchAnswer
	timer   *time.Timer
}

// newBatcher returns nil when batching is disabled (window <= 0) — callers
// treat a nil batcher as the plain serial path.
func newBatcher(backend batchBackend, window time.Duration, maxBatch int) *batcher {
	if window <= 0 {
		return nil
	}
	if maxBatch <= 0 {
		maxBatch = 64
	}
	return &batcher{backend: backend, window: window, maxBatch: maxBatch}
}

// recommend answers one stored-clip query, batched when the serving moment
// rewards it. The request context bounds only this query: it rides into the
// batch as the per-request context, so a cancelled member settles with its
// own error while the cohort completes.
func (b *batcher) recommend(ctx context.Context, clipID string, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)

	version := b.backend.Version()
	b.mu.Lock()
	if b.pending == nil && b.inFlight.Load() <= 1 {
		// Nobody to share work with: serve serially, zero added latency.
		b.mu.Unlock()
		b.bypassTotal.Add(1)
		return b.backend.RecommendCtx(ctx, clipID, topK)
	}
	if b.pending != nil && b.pending.version != version {
		old := b.detachLocked()
		go b.execute(old)
	}
	if b.pending == nil {
		p := &pendingBatch{version: version}
		b.pending = p
		p.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			if b.pending != p {
				b.mu.Unlock()
				return // already flushed by fill or version change
			}
			batch := b.detachLocked()
			b.mu.Unlock()
			b.execute(batch)
		})
	}
	p := b.pending
	ch := make(chan videorec.BatchAnswer, 1)
	p.reqs = append(p.reqs, videorec.BatchRequest{ClipID: clipID, TopK: topK, Ctx: ctx})
	p.chans = append(p.chans, ch)
	var full *pendingBatch
	if len(p.reqs) >= b.maxBatch {
		full = b.detachLocked()
	}
	b.mu.Unlock()
	if full != nil {
		// The member that filled the batch executes it on its own goroutine —
		// its answer arrives on its buffered channel like everyone else's.
		b.execute(full)
	}
	select {
	case a := <-ch:
		return a.Results, a.Meta, a.Err
	case <-ctx.Done():
		// The batch still runs (channel is buffered); this member's item
		// settles inside it with the same context error.
		return nil, videorec.RecommendMeta{}, ctx.Err()
	}
}

// detachLocked removes the forming batch from the slot so the next query
// starts fresh. Callers hold b.mu.
func (b *batcher) detachLocked() *pendingBatch {
	p := b.pending
	b.pending = nil
	if p != nil && p.timer != nil {
		p.timer.Stop()
	}
	return p
}

// execute runs a detached batch and delivers every member's answer. The
// batch context is Background on purpose: each member's own context rode in
// with its request, and no single member's death may bound the cohort.
func (b *batcher) execute(p *pendingBatch) {
	b.batchFlushes.Add(1)
	b.batchedTotal.Add(int64(len(p.reqs)))
	answers := b.backend.RecommendBatchCtx(context.Background(), p.reqs)
	for i, ch := range p.chans {
		ch <- answers[i]
	}
}

// stats reports the coalescer's counters; a nil batcher reports zeros.
func (b *batcher) stats() (batched, flushes, bypass int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.batchedTotal.Load(), b.batchFlushes.Load(), b.bypassTotal.Load()
}
