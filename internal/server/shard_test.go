package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"videorec"
	"videorec/internal/shard"
)

// The server is backend-agnostic: the same handlers serve a single engine or
// a sharded router. These tests pin the shard-aware surface — the per-shard
// /stats breakdown, the drain endpoint, and the shard-addressed replication
// parameters.

func newShardedServer(t testing.TB, n int) (*httptest.Server, *shard.Router) {
	t.Helper()
	router, err := shard.New(n, videorec.Options{SubCommunities: 6})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(router, "")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, router
}

func TestStatsPerShardBreakdown(t *testing.T) {
	ts, _ := newShardedServer(t, 4)
	populate(t, ts)

	st := getStats(t, ts)
	if len(st.Shards) != 4 {
		t.Fatalf("stats reported %d shards, want 4", len(st.Shards))
	}
	sum := 0
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard entry %d labelled %d", i, sh.Shard)
		}
		sum += sh.Videos
	}
	if sum != st.Videos {
		t.Errorf("per-shard videos sum to %d, aggregate says %d", sum, st.Videos)
	}
	if st.Videos != 6 {
		t.Errorf("aggregate videos = %d, want 6", st.Videos)
	}

	// A single-engine backend reports exactly one shard entry.
	ts1, _ := newTestServer(t, "")
	populate(t, ts1)
	if st1 := getStats(t, ts1); len(st1.Shards) != 1 {
		t.Errorf("single engine reported %d shard entries, want 1", len(st1.Shards))
	}
}

func TestDrainShardEndpoint(t *testing.T) {
	ts, router := newShardedServer(t, 2)
	populate(t, ts)
	before := getStats(t, ts)

	// Recommendations before the drain, to compare after.
	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	var want struct {
		Results []videorec.Recommendation `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if resp := post(t, ts.URL+"/shards/drain?shard=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d, want 200", resp.StatusCode)
	}
	if got := router.NumShards(); got != 1 {
		t.Fatalf("after drain NumShards = %d, want 1", got)
	}
	after := getStats(t, ts)
	if len(after.Shards) != 1 || after.Videos != before.Videos {
		t.Fatalf("after drain: %d shard entries, %d videos (want 1, %d)",
			len(after.Shards), after.Videos, before.Videos)
	}

	// Rankings survive the drain bit-identically.
	resp2, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Results []videorec.Recommendation `json:"results"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if fmt.Sprint(got.Results) != fmt.Sprint(want.Results) {
		t.Fatalf("post-drain rankings differ:\n got %v\nwant %v", got.Results, want.Results)
	}

	// Draining the last shard is refused.
	if resp := post(t, ts.URL+"/shards/drain?shard=0", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("drain last shard: status %d, want 409", resp.StatusCode)
	}
	// Malformed and out-of-range shard parameters.
	if resp := post(t, ts.URL+"/shards/drain?shard=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed shard: status %d, want 400", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/shards/drain?shard=7", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("out-of-range shard: status %d, want 409", resp.StatusCode)
	}
}

func TestDrainShardRequiresDrainer(t *testing.T) {
	// A plain engine backend has no shards to drain: 409, not a panic.
	ts, _ := newTestServer(t, "")
	populate(t, ts)
	if resp := post(t, ts.URL+"/shards/drain?shard=0", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("drain on single engine: status %d, want 409", resp.StatusCode)
	}
}

func TestReplicationShardParamValidation(t *testing.T) {
	ts, _ := newShardedServer(t, 2)
	populate(t, ts)

	// Out-of-range shard on the replication endpoints is a client error.
	resp, err := http.Get(ts.URL + "/replication/snapshot?shard=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("snapshot shard=5: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/replication/tail?after=0&shard=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tail shard=5: status %d, want 400", resp.StatusCode)
	}
	// In-range shard without a journal: 409 (same contract as single engine).
	resp, err = http.Get(ts.URL + "/replication/snapshot?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("snapshot shard=1 without journal: status %d, want 409", resp.StatusCode)
	}
}
