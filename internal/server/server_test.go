package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"videorec"
	"videorec/internal/video"
)

func clipJSON(t testing.TB, id string, topic int, seed int64, owner string, commenters ...string) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := video.Synthesize(id, topic, video.DefaultSynthOptions(), rng)
	c := ClipJSON{ID: id, FPS: v.FPS, Owner: owner, Commenters: commenters}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, FrameJSON{W: f.W, H: f.H, Pix: f.Pix})
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestServer(t testing.TB, snapshotPath string) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(videorec.New(videorec.Options{SubCommunities: 6}), snapshotPath)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func post(t testing.TB, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func populate(t testing.TB, ts *httptest.Server) {
	t.Helper()
	fans := []string{"ann", "ben", "cal", "dee"}
	for i := 0; i < 6; i++ {
		body := clipJSON(t, fmt.Sprintf("clip-%d", i), i%2, int64(i+1), fans[i%4], fans...)
		resp := post(t, ts.URL+"/videos", body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	if resp := post(t, ts.URL+"/build", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}
}

func TestIngestBuildRecommend(t *testing.T) {
	ts, _ := newTestServer(t, "")
	populate(t, ts)

	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend status %d", resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) == 0 || len(rr.Results) > 3 {
		t.Fatalf("got %d recommendations", len(rr.Results))
	}
	if rr.Degraded {
		t.Error("undeadlined query flagged degraded")
	}
	for _, r := range rr.Results {
		if r.VideoID == "clip-0" {
			t.Error("self-recommendation")
		}
	}
}

func TestRecommendAdHocClip(t *testing.T) {
	ts, _ := newTestServer(t, "")
	populate(t, ts)
	body := clipJSON(t, "visitor-view", 0, 99, "", "ann", "ben")
	resp := post(t, ts.URL+"/recommend?k=4", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) == 0 {
		t.Fatal("no recommendations for ad-hoc clip")
	}
}

func TestErrorStatuses(t *testing.T) {
	ts, _ := newTestServer(t, "")
	// Recommend before build → 409.
	resp, err := http.Get(ts.URL + "/recommend?id=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("before build: status %d, want 409", resp.StatusCode)
	}

	populate(t, ts)
	// Unknown id → 404.
	resp, err = http.Get(ts.URL + "/recommend?id=missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
	// Missing id → 400.
	resp, err = http.Get(ts.URL + "/recommend")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id: status %d, want 400", resp.StatusCode)
	}
	// Bad clip body → 400.
	if resp := post(t, ts.URL+"/videos", []byte("{notjson")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", resp.StatusCode)
	}
	// Clip with no frames → 400.
	if resp := post(t, ts.URL+"/videos", []byte(`{"id":"x"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("frameless clip: status %d, want 400", resp.StatusCode)
	}
}

func TestUpdatesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "")
	populate(t, ts)
	body, _ := json.Marshal(map[string][]string{"clip-0": {"newfan1", "newfan2", "ann"}})
	resp := post(t, ts.URL+"/updates", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates status %d", resp.StatusCode)
	}
	var sum videorec.UpdateSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.NewConnections == 0 {
		t.Error("no connections derived")
	}
	if sum.GraphUsers == 0 || sum.GraphEdges == 0 {
		t.Errorf("graph counters missing from summary: users=%d edges=%d", sum.GraphUsers, sum.GraphEdges)
	}
	// Bad body → 400.
	if resp := post(t, ts.URL+"/updates", []byte("nope")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad updates body: status %d", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "srv.snap")
	ts, _ := newTestServer(t, path)
	populate(t, ts)
	if resp := post(t, ts.URL+"/snapshot", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	eng, err := videorec.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 6 {
		t.Errorf("restored %d clips, want 6", eng.Len())
	}
	// No path configured → 409.
	ts2, _ := newTestServer(t, "")
	if resp := post(t, ts2.URL+"/snapshot", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("snapshot without path: status %d, want 409", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "")
	populate(t, ts)
	if _, err := http.Get(ts.URL + "/recommend?id=clip-1&k=2"); err != nil {
		t.Fatal(err)
	}
	// An update batch so /stats has a last-maintenance time to report.
	body, _ := json.Marshal(map[string][]string{"clip-0": {"statfan1", "statfan2", "ann"}})
	if resp := post(t, ts.URL+"/updates", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("updates status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Videos            int     `json:"videos"`
		SubCommunities    int     `json:"subCommunities"`
		QueriesServed     int64   `json:"queriesServed"`
		GraphUsers        int     `json:"graphUsers"`
		GraphEdges        int     `json:"graphEdges"`
		GraphOverlay      int     `json:"graphOverlay"`
		LastMaintenanceMs float64 `json:"lastMaintenanceMs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Videos != 6 {
		t.Errorf("videos = %d, want 6", stats.Videos)
	}
	if stats.QueriesServed != 1 {
		t.Errorf("queriesServed = %d, want 1", stats.QueriesServed)
	}
	if stats.GraphUsers == 0 || stats.GraphEdges == 0 {
		t.Errorf("graph size missing from stats: users=%d edges=%d", stats.GraphUsers, stats.GraphEdges)
	}
	if stats.GraphOverlay < 0 {
		t.Errorf("graphOverlay = %d, want >= 0", stats.GraphOverlay)
	}
	if stats.LastMaintenanceMs <= 0 {
		t.Errorf("lastMaintenanceMs = %v, want > 0", stats.LastMaintenanceMs)
	}
}

func TestCacheLRUBehavior(t *testing.T) {
	c := newResultCache(2)
	r1 := []videorec.Recommendation{{VideoID: "a"}}
	r2 := []videorec.Recommendation{{VideoID: "b"}}
	r3 := []videorec.Recommendation{{VideoID: "c"}}
	c.put("k1", r1)
	c.put("k2", r2)
	if _, ok := c.get("k1"); !ok { // touch k1: k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.put("k3", r3) // evicts k2
	if _, ok := c.get("k2"); ok {
		t.Error("k2 should have been evicted")
	}
	if got, ok := c.get("k1"); !ok || got[0].VideoID != "a" {
		t.Error("k1 lost")
	}
	if got, ok := c.get("k3"); !ok || got[0].VideoID != "c" {
		t.Error("k3 lost")
	}
}

// serverStats reads the /stats endpoint.
type serverStats struct {
	Videos           int    `json:"videos"`
	ViewVersion      uint64 `json:"viewVersion"`
	CacheHits        int64  `json:"cacheHits"`
	CacheMisses      int64  `json:"cacheMisses"`
	CacheSize        int    `json:"cacheSize"`
	ShardFailTotal   uint64 `json:"shardFailTotal"`
	BreakerOpenTotal uint64 `json:"breakerOpenTotal"`
	QuorumLostTotal  uint64 `json:"quorumLostTotal"`
	Shards           []struct {
		Shard            int    `json:"shard"`
		Videos           int    `json:"videos"`
		ViewVersion      uint64 `json:"viewVersion"`
		Breaker          string `json:"breaker"`
		ConsecutiveFails int    `json:"consecutiveFails"`
		Failures         uint64 `json:"failures"`
		BreakerOpens     uint64 `json:"breakerOpens"`
		RetryInMs        int64  `json:"retryInMs"`
	} `json:"shards"`
}

func getStats(t *testing.T, ts *httptest.Server) serverStats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// Mutations must not purge the result cache: entries are keyed by view
// version, so a mutation bumps the version (new keys miss once, then hit)
// while entries of the lapsed view stay resident until the LRU evicts them.
func TestVersionKeyedCacheSurvivesMutations(t *testing.T) {
	ts, _ := newTestServer(t, "")
	populate(t, ts)
	fetch := func() {
		resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	fetch()
	fetch()
	st := getStats(t, ts)
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}

	// An update publishes a new view: the version bumps, nothing is purged.
	body, _ := json.Marshal(map[string][]string{"clip-0": {"fresh-user", "ann"}})
	post(t, ts.URL+"/updates", body)
	st2 := getStats(t, ts)
	if st2.ViewVersion != st.ViewVersion+1 {
		t.Errorf("viewVersion = %d after update, want %d", st2.ViewVersion, st.ViewVersion+1)
	}
	if st2.CacheSize != st.CacheSize {
		t.Errorf("cacheSize = %d after update, want %d (mutations must not purge)", st2.CacheSize, st.CacheSize)
	}

	// First fetch against the new view misses; the second hits again.
	fetch()
	fetch()
	st3 := getStats(t, ts)
	if st3.CacheMisses != st.CacheMisses+1 {
		t.Errorf("misses = %d after version bump, want %d", st3.CacheMisses, st.CacheMisses+1)
	}
	if st3.CacheHits != st.CacheHits+1 {
		t.Errorf("hits = %d after version bump, want %d", st3.CacheHits, st.CacheHits+1)
	}
	// The lapsed view's entry is still resident alongside the new one.
	if st3.CacheSize != st.CacheSize+1 {
		t.Errorf("cacheSize = %d, want %d (old + new version entries)", st3.CacheSize, st.CacheSize+1)
	}
}
