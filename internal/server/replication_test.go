package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"videorec"
	"videorec/internal/store"
	"videorec/internal/video"
)

// buildJournaledEngine returns a built engine with an attached journal —
// the primary shape for replication tests.
func buildJournaledEngine(t testing.TB, dir string) *videorec.Engine {
	t.Helper()
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	populateEngine(t, eng)
	if err := eng.AttachJournal(filepath.Join(dir, "primary.wal")); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestHealthzAlwaysUp(t *testing.T) {
	srv := New(videorec.New(videorec.Options{}), "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz on an empty engine = %d, want 200 (liveness, not readiness)", resp.StatusCode)
	}
}

func TestReadyzGatesOnBuildAndChecks(t *testing.T) {
	lagging := true
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	srv := NewWithConfig(eng, Config{ReadyChecks: []ReadyCheck{{
		Name: "replicaLag",
		Check: func() error {
			if lagging {
				return errors.New("lag 999 over threshold")
			}
			return nil
		},
	}}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyz := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	// Unbuilt view: not ready, and the response names the failing gate.
	code, body := readyz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before build = %d, want 503", code)
	}
	checks := body["checks"].(map[string]any)
	if checks["viewBuilt"] == "ok" {
		t.Fatalf("viewBuilt = %v, want failure before build", checks["viewBuilt"])
	}

	populateEngine(t, eng)
	if code, body = readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with lagging replica = %d, want 503", code)
	} else if body["checks"].(map[string]any)["viewBuilt"] != "ok" {
		t.Fatal("viewBuilt should pass after build")
	}

	lagging = false
	if code, _ = readyz(); code != http.StatusOK {
		t.Fatalf("readyz all green = %d, want 200", code)
	}
}

func populateEngine(t testing.TB, eng *videorec.Engine) {
	t.Helper()
	fans := []string{"ann", "ben", "cal", "dee"}
	for i := 0; i < 6; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		v := video.Synthesize(fmt.Sprintf("clip-%d", i), i%2, video.DefaultSynthOptions(), rng)
		clip := videorec.Clip{ID: v.ID, FPS: v.FPS, Owner: fans[i%4], Commenters: fans}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(clip); err != nil {
			t.Fatal(err)
		}
	}
	eng.Build()
}

func TestReadOnlyRejectsMutations(t *testing.T) {
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	populateEngine(t, eng)
	srv := NewWithConfig(eng, Config{ReadOnly: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, route := range []string{"/videos", "/build", "/updates"} {
		resp := post(t, ts.URL+route, []byte(`{}`))
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("POST %s on read-only server = %d, want 403", route, resp.StatusCode)
		}
	}
	// Reads still serve.
	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-only GET /recommend = %d, want 200", resp.StatusCode)
	}
}

func TestReplicationSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	eng := buildJournaledEngine(t, dir)
	srv := New(eng, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if _, err := eng.ApplyUpdates(map[string][]string{"clip-0": {fmt.Sprintf("late-%d", i), "ann"}}); err != nil {
			t.Fatal(err)
		}
	}

	// Bootstrap: the snapshot bytes load, and the cursor header matches.
	resp, err := http.Get(ts.URL + "/replication/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderJournalSeq), 10, 64)
	if err != nil || seq != 3 {
		t.Fatalf("%s = %q, want 3", HeaderJournalSeq, resp.Header.Get(HeaderJournalSeq))
	}
	boot, err := videorec.Load(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if boot.AppliedSeq() != 3 || boot.Len() != eng.Len() {
		t.Fatalf("bootstrapped engine: seq=%d len=%d, want 3/%d", boot.AppliedSeq(), boot.Len(), eng.Len())
	}

	// Tail from the middle.
	var tr TailResponse
	getJSON(t, ts.URL+"/replication/tail?after=1", &tr)
	if tr.Head != 3 || len(tr.Entries) != 2 || tr.Entries[0].Seq != 2 {
		t.Fatalf("tail after=1 = %+v, want head 3 entries 2,3", tr)
	}
	// Caught up: empty entries, head unchanged.
	getJSON(t, ts.URL+"/replication/tail?after=3", &tr)
	if tr.Head != 3 || len(tr.Entries) != 0 {
		t.Fatalf("tail after=3 = %+v, want caught up", tr)
	}

	// Compaction: an old cursor now gets 410 Gone.
	if err := eng.SaveFileAndCompact(filepath.Join(dir, "eng.snap")); err != nil {
		t.Fatal(err)
	}
	r2, err := http.Get(ts.URL + "/replication/tail?after=1")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusGone {
		t.Fatalf("tail past compaction = %d, want 410", r2.StatusCode)
	}
}

func TestSnapshotCompactEndpoint(t *testing.T) {
	dir := t.TempDir()
	eng := buildJournaledEngine(t, dir)
	srv := NewWithConfig(eng, Config{SnapshotPath: filepath.Join(dir, "eng.snap")})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := eng.ApplyUpdates(map[string][]string{"clip-3": {"zed", "dee"}}); err != nil {
		t.Fatal(err)
	}
	if resp := post(t, ts.URL+"/snapshot?compact=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot?compact=1 = %d", resp.StatusCode)
	}
	if _, _, base, seq := eng.JournalStatus(); base != 1 || seq != 1 {
		t.Fatalf("journal base/seq = %d/%d after compaction, want 1/1", base, seq)
	}
	resp, err := http.Get(ts.URL + "/replication/tail?after=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("tail with pre-compaction cursor = %d, want 410", resp.StatusCode)
	}
}

func TestReplicationTailLongPollWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	eng := buildJournaledEngine(t, dir)
	srv := New(eng, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go func() {
		time.Sleep(80 * time.Millisecond)
		eng.ApplyUpdates(map[string][]string{"clip-1": {"poll-user", "ben"}})
	}()
	start := time.Now()
	var tr TailResponse
	getJSON(t, ts.URL+"/replication/tail?after=0&wait=5s", &tr)
	if len(tr.Entries) != 1 || tr.Entries[0].Seq != 1 {
		t.Fatalf("long-poll tail = %+v, want the appended entry", tr)
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("long-poll waited the full window (%v) instead of waking on append", elapsed)
	}
}

func TestReplicationRequiresJournal(t *testing.T) {
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	populateEngine(t, eng)
	srv := New(eng, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, route := range []string{"/replication/snapshot", "/replication/tail"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s without journal = %d, want 409", route, resp.StatusCode)
		}
	}
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// Graceful shutdown must leave no torn journal tail: Drain stops accepting,
// waits out in-flight updates, snapshots, and closes the journal — after
// which the journal repairs to zero dropped bytes and replays in full
// against the final snapshot.
func TestDrainLeavesNoTornTail(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "primary.wal")
	snapPath := filepath.Join(dir, "final.snap")
	eng := buildJournaledEngine(t, dir)
	srv := NewWithConfig(eng, Config{MaxInFlight: 8})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	// A storm of journaled updates racing the drain.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(map[string][]string{"clip-2": {fmt.Sprintf("drain-%d-%d", w, i), "cal"}})
				resp, err := http.Post(base+"/updates", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server shut down mid-request: expected during drain
				}
				resp.Body.Close()
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := Drain(ctx, hs, eng, snapPath); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	// No torn tail: repair finds nothing to drop.
	if dropped, err := store.RepairJournal(walPath); err != nil || dropped != 0 {
		t.Fatalf("journal after drain: dropped=%d err=%v, want a clean tail", dropped, err)
	}
	// The final snapshot's cursor covers the whole journal: a restart
	// replays zero batches and matches the drained engine.
	restored, err := videorec.LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if restored.AppliedSeq() != eng.AppliedSeq() {
		t.Fatalf("snapshot cursor %d, engine cursor %d", restored.AppliedSeq(), eng.AppliedSeq())
	}
	n, err := restored.ReplayJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d batches after a drained snapshot, want 0 (all covered)", n)
	}
	a, err := eng.Recommend("clip-2", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Recommend("clip-2", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs after drain restart: %+v vs %+v", i, a[i], b[i])
		}
	}
}
