package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Health and readiness — what a load balancer needs to fail over without
// guessing from /stats:
//
//	GET /healthz   process liveness: 200 whenever the handler can run
//	GET /readyz    serving readiness: 200 only when every readiness check
//	               passes (view built, journal attached when configured,
//	               replica lag under threshold, ...)
//
// Liveness failing means restart the process; readiness failing means stop
// routing queries here but leave it alone — a replica that is catching up
// is alive and unready at the same time.

// ReadyCheck is one named readiness condition. The name appears in the
// /readyz response so operators can see which gate is failing.
type ReadyCheck struct {
	Name  string
	Check func() error
}

// BuiltCheck is the baseline readiness gate every deployment wants: the
// engine's published view must have its social machinery built, or every
// /recommend would 409.
func BuiltCheck(eng Backend) ReadyCheck {
	return ReadyCheck{Name: "viewBuilt", Check: func() error {
		if !eng.Built() {
			return errors.New("view not built")
		}
		return nil
	}}
}

// JournalCheck gates readiness on an attached journal — a primary expected
// to journal (and to ship its log to replicas) is not ready without one.
// On a sharded backend the check holds only when every shard's journal is
// attached (Backend.JournalStatus ANDs attachment across shards).
func JournalCheck(eng Backend) ReadyCheck {
	return ReadyCheck{Name: "journalAttached", Check: func() error {
		if attached, _, _, _ := eng.JournalStatus(); !attached {
			return errors.New("journal not attached")
		}
		return nil
	}}
}

// QuorumCheck gates readiness on shard quorum: when so many breakers are
// open that a query could not gather MinShardQuorum answers, the deployment
// should fall out of rotation rather than 503 every request. Applied
// automatically by /readyz when the backend is a router.
func QuorumCheck(q quorumReporter) ReadyCheck {
	return ReadyCheck{Name: "shardQuorum", Check: func() error {
		required, healthy := q.Quorum()
		if healthy < required {
			return fmt.Errorf("%d of %d required shards healthy", healthy, required)
		}
		return nil
	}}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := make([]ReadyCheck, 0, 2+len(s.cfg.ReadyChecks))
	checks = append(checks, BuiltCheck(s.eng))
	if q, ok := s.eng.(quorumReporter); ok {
		checks = append(checks, QuorumCheck(q))
	}
	checks = append(checks, s.cfg.ReadyChecks...)
	status := make(map[string]string, len(checks))
	ready := true
	for _, c := range checks {
		if err := c.Check(); err != nil {
			ready = false
			status[c.Name] = err.Error()
		} else {
			status[c.Name] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{"ready": ready, "checks": status})
}

// Drain shuts the deployment down without losing anything: stop accepting
// connections and wait for in-flight requests (which drains the admission
// limiter — every admitted query holds its slot until its handler returns),
// then write a final snapshot stamped with the journal cursor, then flush
// and close the journal. The order matters: queries finish before the
// state is cut, and the journal outlives the snapshot so a crash inside
// Drain itself still leaves snapshot + journal covering every batch.
func Drain(ctx context.Context, hs *http.Server, eng Backend, snapshotPath string) error {
	var errs []error
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("server: drain http: %w", err))
		}
	}
	if snapshotPath != "" {
		if err := eng.SaveFile(snapshotPath); err != nil {
			errs = append(errs, fmt.Errorf("server: drain snapshot: %w", err))
		}
	}
	if err := eng.CloseJournal(); err != nil {
		errs = append(errs, fmt.Errorf("server: drain journal: %w", err))
	}
	return errors.Join(errs...)
}
