package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"videorec"
	"videorec/internal/video"
)

// newBatchedTestServer builds a populated server with coalescing enabled and
// a generous window, so concurrent test queries reliably land in one batch.
func newBatchedTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewWithConfig(videorec.New(videorec.Options{SubCommunities: 6}), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	populate(t, ts)
	return ts, srv
}

func batchGet(t *testing.T, ts *httptest.Server, id string, k int) RecommendResponse {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/recommend?id=%s&k=%d", ts.URL, id, k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend %s status %d", id, resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// gatedBackend wraps a real engine, blocking the FIRST serial RecommendCtx
// until released — so a test can deterministically hold one query in flight
// while more arrive and form a batch.
type gatedBackend struct {
	*videorec.Engine
	firstIn chan struct{} // closed when the first serial call has entered
	release chan struct{} // the first serial call blocks until this closes
	once    sync.Once
	batchMu sync.Mutex
	batches [][]videorec.BatchRequest
}

func (g *gatedBackend) RecommendCtx(ctx context.Context, clipID string, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error) {
	g.once.Do(func() {
		close(g.firstIn)
		<-g.release
	})
	return g.Engine.RecommendCtx(ctx, clipID, topK)
}

func (g *gatedBackend) RecommendBatchCtx(ctx context.Context, reqs []videorec.BatchRequest) []videorec.BatchAnswer {
	g.batchMu.Lock()
	g.batches = append(g.batches, append([]videorec.BatchRequest(nil), reqs...))
	g.batchMu.Unlock()
	return g.Engine.RecommendBatchCtx(ctx, reqs)
}

// The coalescer protocol, deterministically: a lone query bypasses; queries
// arriving while one is in flight form a batch; the batch flushes at
// MaxBatch; every batched answer is bit-identical to the serial answer.
func TestCoalescedRecommendMatchesSerial(t *testing.T) {
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	fans := []string{"ann", "ben", "cal", "dee"}
	for i := 0; i < 6; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		v := video.Synthesize(fmt.Sprintf("clip-%d", i), i%2, video.DefaultSynthOptions(), rng)
		clip := videorec.Clip{ID: v.ID, FPS: v.FPS, Owner: fans[i%4], Commenters: fans}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(clip); err != nil {
			t.Fatal(err)
		}
	}
	eng.Build()

	g := &gatedBackend{Engine: eng, firstIn: make(chan struct{}), release: make(chan struct{})}
	b := newBatcher(g, time.Minute, 3) // flush only via MaxBatch — no timing dependence

	want := map[string][]videorec.Recommendation{}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("clip-%d", i)
		recs, _, err := eng.RecommendCtx(context.Background(), id, 3)
		if err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		want[id] = recs
	}

	type answer struct {
		recs []videorec.Recommendation
		err  error
	}
	// Query 0 bypasses and parks inside the gated backend.
	first := make(chan answer, 1)
	go func() {
		recs, _, err := b.recommend(context.Background(), "clip-0", 3)
		first <- answer{recs, err}
	}()
	<-g.firstIn

	// Three more arrive while it is in flight: they coalesce and flush at
	// MaxBatch=3 without any window wait.
	var wg sync.WaitGroup
	got := make([]answer, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs, _, err := b.recommend(context.Background(), fmt.Sprintf("clip-%d", i+1), 3)
			got[i] = answer{recs, err}
		}(i)
	}
	wg.Wait()
	close(g.release)
	a0 := <-first

	if a0.err != nil {
		t.Fatalf("bypassed query: %v", a0.err)
	}
	if !reflect.DeepEqual(a0.recs, want["clip-0"]) {
		t.Fatal("bypassed query differs from serial")
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("clip-%d", i+1)
		if got[i].err != nil {
			t.Fatalf("batched %s: %v", id, got[i].err)
		}
		if !reflect.DeepEqual(got[i].recs, want[id]) {
			t.Fatalf("batched %s differs from serial\nbatched: %+v\nserial:  %+v", id, got[i].recs, want[id])
		}
	}

	batched, flushes, bypass := b.stats()
	if batched != 3 || flushes != 1 || bypass != 1 {
		t.Fatalf("counters batched=%d flushes=%d bypass=%d, want 3/1/1", batched, flushes, bypass)
	}
	if len(g.batches) != 1 || len(g.batches[0]) != 3 {
		t.Fatalf("backend saw batches %v, want one batch of 3", g.batches)
	}
}

// A lone query must bypass the window — no added latency, counted as bypass.
func TestCoalesceBypassSingleQuery(t *testing.T) {
	ts, srv := newBatchedTestServer(t, Config{
		BatchWindow: time.Second, // a non-bypassed query would stall visibly
		CacheSize:   1,
	})
	start := time.Now()
	batchGet(t, ts, "clip-0", 3)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("single query took %v — it waited out the batch window", elapsed)
	}
	_, _, bypass := srv.batch.stats()
	if bypass == 0 {
		t.Fatal("single query was not counted as a bypass")
	}
}

// /stats must surface the coalescing counters.
func TestStatsReportBatching(t *testing.T) {
	ts, _ := newBatchedTestServer(t, Config{
		BatchWindow: 20 * time.Millisecond,
		CacheSize:   1,
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batchGet(t, ts, fmt.Sprintf("clip-%d", i), 3)
		}(i)
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"batchedTotal", "batchFlushes", "avgBatchSize", "batchBypassTotal"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
}

// The batcher must flush early at MaxBatch instead of waiting out the
// window: with a window far longer than the test timeout, maxBatch
// concurrent queries still answer promptly.
func TestCoalesceFlushAtMaxBatch(t *testing.T) {
	ts, srv := newBatchedTestServer(t, Config{
		BatchWindow: 30 * time.Second,
		MaxBatch:    2,
		CacheSize:   1,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				batchGet(t, ts, fmt.Sprintf("clip-%d", i), 3)
			}(i)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queries stalled — MaxBatch did not flush the window early")
	}
	_, flushes, bypass := srv.batch.stats()
	if flushes == 0 && bypass < 4 {
		t.Fatalf("no flush and only %d bypasses for 4 queries", bypass)
	}
}
