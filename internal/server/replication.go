package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"videorec"
	"videorec/internal/faults"
	"videorec/internal/store"
)

// Replication endpoints — the primary side of journal shipping.
//
//	GET /replication/snapshot          bootstrap snapshot (binary), cursor
//	    [?shard=i]                     in X-Vrec-Journal-Seq / X-Vrec-View-Version
//	GET /replication/tail?after=N      journal entries with seq > N (JSON);
//	    [&wait=2s] [&max=512]          long-polls up to wait when caught up;
//	    [&shard=i]                     410 Gone when N predates compaction
//
// Both require an attached journal: without one there is no replication log
// to ship and the endpoints answer 409. On a sharded backend each shard is
// its own replication stream — per-shard snapshot, journal and cursor — and
// the shard parameter (default 0) selects which one; replicas run one
// puller per shard.

// Headers carrying the bootstrap cursor alongside the snapshot bytes.
const (
	HeaderJournalSeq  = "X-Vrec-Journal-Seq"
	HeaderViewVersion = "X-Vrec-View-Version"
)

// maxTailWait caps the long-poll window so load balancers and proxies with
// conservative idle timeouts never see a tail poll as a hung request.
const maxTailWait = 30 * time.Second

// defaultTailMax bounds one tail response when the client does not say.
const defaultTailMax = 512

// TailResponse is the wire form of one journal-tail poll.
type TailResponse struct {
	// Head is the primary's newest journal sequence number — the replica's
	// lag is Head minus its own cursor.
	Head uint64 `json:"head"`
	// Base is the compaction base; a future poll with a cursor below it
	// will get 410.
	Base uint64 `json:"base"`
	// Version is the primary's current view version (diagnostics only).
	Version uint64 `json:"version"`
	// Entries are the shipped batches, in log order. Empty when the caller
	// is caught up.
	Entries []store.Entry `json:"entries"`
}

// shardFor resolves the shard query parameter (default 0) to the engine
// whose replication stream the request addresses.
func (s *Server) shardFor(r *http.Request) (*videorec.Engine, error) {
	idx, err := queryUint(r, "shard", 0)
	if err != nil {
		return nil, err
	}
	eng, ok := s.eng.ShardEngine(int(idx))
	if !ok {
		return nil, fmt.Errorf("no shard %d in a %d-shard backend", idx, s.eng.NumShards())
	}
	return eng, nil
}

func (s *Server) handleReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	eng, err := s.shardFor(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if eng.JournalPath() == "" {
		httpError(w, http.StatusConflict, errors.New("replication requires an attached journal (-journal)"))
		return
	}
	// Buffer the snapshot instead of streaming: WriteReplicationSnapshot
	// holds the engine's writer lock for a consistent (state, cursor) cut,
	// and a slow replica must not hold that lock for its download.
	var buf bytes.Buffer
	cur, err := eng.WriteReplicationSnapshot(&buf)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderJournalSeq, strconv.FormatUint(cur.Seq, 10))
	w.Header().Set(HeaderViewVersion, strconv.FormatUint(cur.SnapshotVersion, 10))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleReplicationTail(w http.ResponseWriter, r *http.Request) {
	if err := faults.Inject(faults.ReplicationTail); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	eng, err := s.shardFor(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	path := eng.JournalPath()
	if path == "" {
		httpError(w, http.StatusConflict, errors.New("replication requires an attached journal (-journal)"))
		return
	}
	after, err := queryUint(r, "after", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	max, err := queryUint(r, "max", defaultTailMax)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	wait := time.Duration(0)
	if v := r.URL.Query().Get("wait"); v != "" {
		wait, err = time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("malformed wait parameter %q: %v", v, err))
			return
		}
		if wait > maxTailWait {
			wait = maxTailWait
		}
	}

	// Long-poll on the engine's lock-free cursor before touching the file:
	// the common caught-up case costs one atomic load per tick.
	deadline := time.Now().Add(wait)
	for eng.AppliedSeq() <= after && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return // client gave up while we waited
		case <-time.After(15 * time.Millisecond):
		}
	}

	tail, err := store.ReadTail(path, after, int(max))
	if errors.Is(err, store.ErrCompacted) {
		// The cursor predates the retained log: the only way forward is a
		// fresh snapshot. 410 tells the replica exactly that.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		writeJSON(w, map[string]any{"error": err.Error(), "base": tail.Base})
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := TailResponse{Head: tail.Head, Base: tail.Base, Version: eng.Version(), Entries: tail.Entries}
	if err := faults.Inject(faults.ReplicationTailMid); err != nil {
		s.abortMidStream(w, resp)
		return
	}
	writeJSON(w, resp)
}

// abortMidStream simulates the failure replicas must survive: a response
// that dies partway through its body. Half the payload goes out, then the
// connection is torn down via http.ErrAbortHandler (which recoverPanics
// deliberately re-raises).
func (s *Server) abortMidStream(w http.ResponseWriter, resp TailResponse) {
	b, err := json.Marshal(resp)
	if err != nil || len(b) < 2 {
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b[:len(b)/2])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed %s parameter %q: %v", name, v, err)
	}
	return n, nil
}
