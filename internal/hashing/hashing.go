// Package hashing implements the social-relevance optimization structures of
// §4.2.3: the shift-add-xor class of string hash functions (Equation 7,
// after Ramakrishna & Zobel [21]) and the chained hash table whose elements
// are ⟨key, cno, nextptr⟩ triads mapping a social user name to its
// sub-community id.
package hashing

// Shift amounts of the shift-add-xor step function. L=5, R=2 are the
// constants recommended in [21] for ASCII keys.
const (
	shiftL = 5
	shiftR = 2
)

// ShiftAddXor computes the shift-add-xor hash of s (Equation 7): the hash is
// seeded with v (init), folds each character c with
// h ← h XOR (h<<L + h>>R + c) (step), and is reduced modulo table size T
// (final). tableSize must be positive.
func ShiftAddXor(s string, seed, tableSize uint32) uint32 {
	h := seed
	for i := 0; i < len(s); i++ {
		h ^= (h << shiftL) + (h >> shiftR) + uint32(s[i])
	}
	return h % tableSize
}

// entry is the ⟨key, cno, nextptr⟩ triad of Figure 4.
type entry struct {
	key  string
	cno  int
	next *entry
}

// Table is a chained hash table mapping user names to sub-community ids.
// New triads are inserted at the head of their bucket, exactly as described
// in §4.2.3. The zero value is not usable; call NewTable.
type Table struct {
	buckets []*entry
	seed    uint32
	size    int
}

// NewTable allocates a table with nBuckets chains. nBuckets is clamped to at
// least 1; seed selects the member of the shift-add-xor class.
func NewTable(nBuckets int, seed uint32) *Table {
	if nBuckets < 1 {
		nBuckets = 1
	}
	return &Table{buckets: make([]*entry, nBuckets), seed: seed}
}

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.size }

// Clone returns an independent copy of the table. Triads are duplicated
// chain by chain (Insert and ReplaceCno rewrite cno fields in place, so the
// chains cannot be shared); each cloned chain preserves its triad order.
func (t *Table) Clone() *Table {
	cp := &Table{buckets: make([]*entry, len(t.buckets)), seed: t.seed, size: t.size}
	for b, head := range t.buckets {
		var tail *entry
		for e := head; e != nil; e = e.next {
			ne := &entry{key: e.key, cno: e.cno}
			if tail == nil {
				cp.buckets[b] = ne
			} else {
				tail.next = ne
			}
			tail = ne
		}
	}
	return cp
}

// Buckets returns the number of chains.
func (t *Table) Buckets() int { return len(t.buckets) }

func (t *Table) bucket(key string) uint32 {
	return ShiftAddXor(key, t.seed, uint32(len(t.buckets)))
}

// Insert maps key to cno. An existing key has its cno updated in place;
// otherwise a new triad is pushed at the head of the appropriate bucket.
func (t *Table) Insert(key string, cno int) {
	b := t.bucket(key)
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			e.cno = cno
			return
		}
	}
	t.buckets[b] = &entry{key: key, cno: cno, next: t.buckets[b]}
	t.size++
}

// Lookup returns the sub-community id of key. The second result reports
// whether the key is present.
func (t *Table) Lookup(key string) (int, bool) {
	for e := t.buckets[t.bucket(key)]; e != nil; e = e.next {
		if e.key == key {
			return e.cno, true
		}
	}
	return 0, false
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key string) bool {
	b := t.bucket(key)
	var prev *entry
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			if prev == nil {
				t.buckets[b] = e.next
			} else {
				prev.next = e.next
			}
			t.size--
			return true
		}
		prev = e
	}
	return false
}

// ReplaceCno rewrites every entry with sub-community id old to id new and
// returns the number of entries changed. This is the UpdateIndex step of the
// social-updates maintenance algorithm (Figure 5): a union of two
// sub-communities replaces their ids with a single new id.
func (t *Table) ReplaceCno(old, new int) int {
	n := 0
	for _, head := range t.buckets {
		for e := head; e != nil; e = e.next {
			if e.cno == old {
				e.cno = new
				n++
			}
		}
	}
	return n
}

// Range calls f for every (key, cno) pair until f returns false. Iteration
// order is unspecified.
func (t *Table) Range(f func(key string, cno int) bool) {
	for _, head := range t.buckets {
		for e := head; e != nil; e = e.next {
			if !f(e.key, e.cno) {
				return
			}
		}
	}
}

// ChainStats returns the mean and maximum chain length over non-empty
// buckets — η in the vectorization cost model n·η·β of §4.2.3.
func (t *Table) ChainStats() (mean float64, max int) {
	nonEmpty := 0
	for _, head := range t.buckets {
		n := 0
		for e := head; e != nil; e = e.next {
			n++
		}
		if n > 0 {
			nonEmpty++
			mean += float64(n)
			if n > max {
				max = n
			}
		}
	}
	if nonEmpty > 0 {
		mean /= float64(nonEmpty)
	}
	return mean, max
}
