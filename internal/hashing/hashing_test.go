package hashing

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShiftAddXorDeterministic(t *testing.T) {
	a := ShiftAddXor("alice", 7, 1024)
	b := ShiftAddXor("alice", 7, 1024)
	if a != b {
		t.Fatalf("hash not deterministic: %d vs %d", a, b)
	}
	if a >= 1024 {
		t.Fatalf("hash %d not reduced modulo table size", a)
	}
}

func TestShiftAddXorSeedSelectsFunction(t *testing.T) {
	// Different seeds should give different mappings for at least some keys.
	diff := 0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("user-%d", i)
		if ShiftAddXor(key, 1, 4096) != ShiftAddXor(key, 2, 4096) {
			diff++
		}
	}
	if diff < 50 {
		t.Errorf("only %d/100 keys moved between seeds", diff)
	}
}

func TestShiftAddXorUniformity(t *testing.T) {
	// Coarse uniformity: hashing 64k distinct keys into 256 buckets should
	// not leave any bucket nearly empty or overfull (±50% of expectation).
	const buckets = 256
	const keys = 1 << 16
	counts := make([]int, buckets)
	for i := 0; i < keys; i++ {
		counts[ShiftAddXor(fmt.Sprintf("user-%d", i), 31, buckets)]++
	}
	want := keys / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d keys, expectation %d", b, c, want)
		}
	}
}

func TestShiftAddXorEmptyString(t *testing.T) {
	if got := ShiftAddXor("", 5, 100); got != 5%100 {
		t.Errorf("empty string hash = %d, want seed mod size", got)
	}
}

func TestTableInsertLookup(t *testing.T) {
	tb := NewTable(16, 1)
	tb.Insert("alice", 3)
	tb.Insert("bob", 7)
	if got, ok := tb.Lookup("alice"); !ok || got != 3 {
		t.Errorf("alice -> (%d, %v), want (3, true)", got, ok)
	}
	if got, ok := tb.Lookup("bob"); !ok || got != 7 {
		t.Errorf("bob -> (%d, %v), want (7, true)", got, ok)
	}
	if _, ok := tb.Lookup("carol"); ok {
		t.Error("carol should be absent")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
}

func TestTableInsertUpdatesExisting(t *testing.T) {
	tb := NewTable(4, 1)
	tb.Insert("alice", 1)
	tb.Insert("alice", 9)
	if got, _ := tb.Lookup("alice"); got != 9 {
		t.Errorf("alice -> %d, want 9", got)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestTableDelete(t *testing.T) {
	tb := NewTable(2, 1) // tiny table forces chains
	keys := []string{"a", "b", "c", "d", "e"}
	for i, k := range keys {
		tb.Insert(k, i)
	}
	if !tb.Delete("c") {
		t.Fatal("Delete(c) = false")
	}
	if _, ok := tb.Lookup("c"); ok {
		t.Error("c still present after delete")
	}
	if tb.Delete("zz") {
		t.Error("Delete(zz) = true for absent key")
	}
	if tb.Len() != len(keys)-1 {
		t.Errorf("Len = %d, want %d", tb.Len(), len(keys)-1)
	}
	for i, k := range keys {
		if k == "c" {
			continue
		}
		if got, ok := tb.Lookup(k); !ok || got != i {
			t.Errorf("%s -> (%d, %v), want (%d, true)", k, got, ok, i)
		}
	}
}

func TestTableReplaceCno(t *testing.T) {
	tb := NewTable(8, 1)
	tb.Insert("a", 1)
	tb.Insert("b", 1)
	tb.Insert("c", 2)
	if n := tb.ReplaceCno(1, 5); n != 2 {
		t.Errorf("ReplaceCno changed %d entries, want 2", n)
	}
	for _, k := range []string{"a", "b"} {
		if got, _ := tb.Lookup(k); got != 5 {
			t.Errorf("%s -> %d, want 5", k, got)
		}
	}
	if got, _ := tb.Lookup("c"); got != 2 {
		t.Errorf("c -> %d, want 2 (untouched)", got)
	}
}

func TestTableRange(t *testing.T) {
	tb := NewTable(8, 1)
	want := map[string]int{"a": 1, "b": 2, "c": 3}
	for k, v := range want {
		tb.Insert(k, v)
	}
	got := map[string]int{}
	tb.Range(func(k string, cno int) bool {
		got[k] = cno
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s -> %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	tb.Range(func(string, int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early-stop Range visited %d entries, want 1", n)
	}
}

func TestTableChainStats(t *testing.T) {
	tb := NewTable(1, 1) // everything chains in one bucket
	for i := 0; i < 5; i++ {
		tb.Insert(fmt.Sprintf("k%d", i), i)
	}
	mean, max := tb.ChainStats()
	if mean != 5 || max != 5 {
		t.Errorf("ChainStats = (%g, %d), want (5, 5)", mean, max)
	}
	empty := NewTable(4, 1)
	if mean, max := empty.ChainStats(); mean != 0 || max != 0 {
		t.Errorf("empty ChainStats = (%g, %d)", mean, max)
	}
}

func TestNewTableClampsBuckets(t *testing.T) {
	tb := NewTable(0, 1)
	tb.Insert("x", 1)
	if got, ok := tb.Lookup("x"); !ok || got != 1 {
		t.Error("table with clamped bucket count unusable")
	}
	if tb.Buckets() != 1 {
		t.Errorf("Buckets = %d, want 1", tb.Buckets())
	}
}

// Property: the chained table behaves exactly like a built-in map under a
// random operation sequence.
func TestPropertyTableMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(1+rng.Intn(8), uint32(rng.Int31())) // small → heavy chaining
		ref := map[string]int{}
		for op := 0; op < 300; op++ {
			key := fmt.Sprintf("u%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				cno := rng.Intn(10)
				tb.Insert(key, cno)
				ref[key] = cno
			case 1:
				got, ok := tb.Lookup(key)
				want, wok := ref[key]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				if tb.Delete(key) != (func() bool { _, ok := ref[key]; return ok })() {
					return false
				}
				delete(ref, key)
			}
			if tb.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb := NewTable(4096, 17)
	for i := 0; i < 10000; i++ {
		tb.Insert(fmt.Sprintf("user-%d", i), i%60)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup("user-5000")
	}
}

func BenchmarkShiftAddXor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ShiftAddXor("some-social-user-name", 17, 1<<20)
	}
}

// FuzzShiftAddXor: any key, seed and table size must hash in range without
// panicking, deterministically.
func FuzzShiftAddXor(f *testing.F) {
	f.Add("user-1", uint32(17), uint32(1024))
	f.Add("", uint32(0), uint32(1))
	f.Add("日本語キー", uint32(99), uint32(7))
	f.Fuzz(func(t *testing.T, key string, seed, size uint32) {
		if size == 0 {
			size = 1
		}
		h1 := ShiftAddXor(key, seed, size)
		h2 := ShiftAddXor(key, seed, size)
		if h1 != h2 {
			t.Fatal("nondeterministic")
		}
		if h1 >= size {
			t.Fatalf("hash %d out of table size %d", h1, size)
		}
	})
}
