package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"videorec/internal/community"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	m := NewSymMatrix(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, vecs := JacobiEigen(m, 50, 1e-12)
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-9 {
			t.Errorf("eigenvalue %d = %g, want %g", i, vals[i], w)
		}
	}
	// Eigenvector of eigenvalue 1 must be e1 (up to sign).
	if math.Abs(math.Abs(vecs[0][1])-1) > 1e-9 {
		t.Errorf("eigenvector for λ=1: %v", vecs[0])
	}
}

func TestJacobiEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewSymMatrix(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	m.Set(0, 1, 1)
	vals, vecs := JacobiEigen(m, 50, 1e-14)
	if math.Abs(vals[0]-1) > 1e-9 || math.Abs(vals[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v, want [1 3]", vals)
	}
	// λ=1 eigenvector ∝ (1,−1).
	v := vecs[0]
	if math.Abs(math.Abs(v[0])-math.Abs(v[1])) > 1e-9 || v[0]*v[1] > 0 {
		t.Errorf("λ=1 eigenvector = %v", v)
	}
}

// Property: A·v = λ·v for every returned pair on random symmetric matrices.
func TestPropertyJacobiEigenEquation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := NewSymMatrix(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		vals, vecs := JacobiEigen(m, 80, 1e-14)
		for e := 0; e < n; e++ {
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += m.At(i, j) * vecs[e][j]
				}
				if math.Abs(av-vals[e]*vecs[e][i]) > 1e-6 {
					return false
				}
			}
		}
		// Eigenvalues ascending.
		for e := 1; e < n; e++ {
			if vals[e] < vals[e-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	labels := KMeans(points, 2, 7, 50)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first cluster split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second cluster split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("clusters merged: %v", labels)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if got := KMeans(nil, 3, 1, 10); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
	labels := KMeans([][]float64{{1}, {2}}, 5, 1, 10) // k > n clamps
	if len(labels) != 2 {
		t.Errorf("labels = %v", labels)
	}
	one := KMeans([][]float64{{1}, {9}, {5}}, 1, 1, 10)
	for _, l := range one {
		if l != 0 {
			t.Errorf("k=1 should label everything 0: %v", one)
		}
	}
}

func twoCliqueGraph() *community.Graph {
	g := community.NewGraph()
	clique := func(names []string) {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				g.AddEdgeWeight(names[i], names[j], 5)
			}
		}
	}
	clique([]string{"a1", "a2", "a3", "a4"})
	clique([]string{"b1", "b2", "b3", "b4"})
	g.AddEdgeWeight("a1", "b1", 0.1) // weak bridge
	return g
}

func TestClusterTwoCliques(t *testing.T) {
	g := twoCliqueGraph()
	labels := Cluster(g, 2, 3)
	if len(labels) != 8 {
		t.Fatalf("labels for %d users, want 8", len(labels))
	}
	for _, u := range []string{"a2", "a3", "a4"} {
		if labels[u] != labels["a1"] {
			t.Errorf("%s not with a1: %v", u, labels)
		}
	}
	for _, u := range []string{"b2", "b3", "b4"} {
		if labels[u] != labels["b1"] {
			t.Errorf("%s not with b1: %v", u, labels)
		}
	}
	if labels["a1"] == labels["b1"] {
		t.Error("cliques merged")
	}
}

func TestClusterEdgeCases(t *testing.T) {
	empty := community.NewGraph()
	if got := Cluster(empty, 3, 1); len(got) != 0 {
		t.Errorf("empty graph: %v", got)
	}
	g := community.NewGraph()
	g.AddUser("solo")
	got := Cluster(g, 4, 1)
	if len(got) != 1 {
		t.Errorf("single user: %v", got)
	}
}

func TestClusterDeterministicGivenSeed(t *testing.T) {
	g := twoCliqueGraph()
	a := Cluster(g, 2, 9)
	b := Cluster(g, 2, 9)
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("nondeterministic label for %s", u)
		}
	}
}

func BenchmarkJacobiEigen(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	m := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JacobiEigen(m, 50, 1e-10)
	}
}

func BenchmarkSpectralCluster(b *testing.B) {
	g := community.NewGraph()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 120; i++ {
		for j := 0; j < 5; j++ {
			u := i
			v := (i + 1 + rng.Intn(20)) % 120
			g.AddEdgeWeight(name(u), name(v), float64(1+rng.Intn(4)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, 8, 1)
	}
}

func name(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestKMeansEmptyClusterReseed(t *testing.T) {
	// Duplicate points force empty clusters; the reseed path must not panic
	// and must still label everything.
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	labels := KMeans(points, 3, 5, 20)
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	for _, l := range labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestJacobiEigenSingleElement(t *testing.T) {
	m := NewSymMatrix(1)
	m.Set(0, 0, 5)
	vals, vecs := JacobiEigen(m, 10, 1e-12)
	if len(vals) != 1 || vals[0] != 5 {
		t.Errorf("vals = %v", vals)
	}
	if len(vecs) != 1 || math.Abs(math.Abs(vecs[0][0])-1) > 1e-12 {
		t.Errorf("vecs = %v", vecs)
	}
}
