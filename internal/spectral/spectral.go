// Package spectral implements the baseline the paper compares sub-community
// extraction against (§4.2.2): normalized spectral clustering in the style
// of von Luxburg [30] — symmetric normalized Laplacian, bottom-k
// eigenvectors via a cyclic Jacobi eigensolver, row normalization and
// k-means on the spectral embedding. Everything is stdlib-only and
// deterministic given the seed.
package spectral

import (
	"math"
	"math/rand"

	"videorec/internal/community"
)

// SymMatrix is a dense symmetric n×n matrix in row-major order.
type SymMatrix struct {
	N    int
	Data []float64
}

// NewSymMatrix allocates a zeroed n×n matrix.
func NewSymMatrix(n int) *SymMatrix {
	return &SymMatrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *SymMatrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set writes both (i, j) and (j, i).
func (m *SymMatrix) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// JacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi method.
// It returns all eigenvalues in ascending order with their eigenvectors:
// vectors[e][i] is component i of the eigenvector for values[e]. The input
// matrix is not modified.
func JacobiEigen(m *SymMatrix, maxSweeps int, tol float64) (values []float64, vectors [][]float64) {
	n := m.N
	a := make([]float64, len(m.Data))
	copy(a, m.Data)
	// v accumulates rotations: starts as identity.
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i*n+j] * a[i*n+j]
			}
		}
		if off < tol {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app := a[p*n+p]
				aqq := a[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of a.
				for i := 0; i < n; i++ {
					aip := a[i*n+p]
					aiq := a[i*n+q]
					a[i*n+p] = c*aip - s*aiq
					a[i*n+q] = s*aip + c*aiq
				}
				for i := 0; i < n; i++ {
					api := a[p*n+i]
					aqi := a[q*n+i]
					a[p*n+i] = c*api - s*aqi
					a[q*n+i] = s*api + c*aqi
				}
				// Accumulate eigenvectors.
				for i := 0; i < n; i++ {
					vip := v[i*n+p]
					viq := v[i*n+q]
					v[i*n+p] = c*vip - s*viq
					v[i*n+q] = s*vip + c*viq
				}
			}
		}
	}
	// Extract and sort ascending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{a[i*n+i], i}
	}
	for i := 1; i < n; i++ { // insertion sort: n is small and this is clear
		for j := i; j > 0 && pairs[j].val < pairs[j-1].val; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	values = make([]float64, n)
	vectors = make([][]float64, n)
	for e, p := range pairs {
		values[e] = p.val
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v[i*n+p.idx]
		}
		vectors[e] = vec
	}
	return values, vectors
}

// Cluster partitions the users of a UIG into k groups by normalized
// spectral clustering. The result maps each user to a cluster id in [0, k).
// Isolated users (degree 0) land in cluster 0's embedding neighbourhood and
// are handled like everyone else.
func Cluster(g *community.Graph, k int, seed int64) map[string]int {
	users := g.Users()
	n := len(users)
	if n == 0 {
		return map[string]int{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	idx := make(map[string]int, n)
	for i, u := range users {
		idx[u] = i
	}
	// W and degrees.
	w := NewSymMatrix(n)
	deg := make([]float64, n)
	for i, u := range users {
		g.Neighbors(u, func(v string, wt float64) {
			j := idx[v]
			w.Set(i, j, wt)
		})
		_ = u
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			deg[i] += w.At(i, j)
		}
	}
	// L_sym = I − D^{−1/2} W D^{−1/2}; isolated nodes keep L_ii = 1.
	l := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var val float64
			if i == j {
				val = 1
			}
			if deg[i] > 0 && deg[j] > 0 && w.At(i, j) != 0 {
				val -= w.At(i, j) / math.Sqrt(deg[i]*deg[j])
			}
			l.Set(i, j, val)
		}
	}
	_, vectors := JacobiEigen(l, 60, 1e-10)
	// Embed each user by the bottom-k eigenvectors, row-normalized.
	emb := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		for e := 0; e < k; e++ {
			row[e] = vectors[e][i]
		}
		norm := 0.0
		for _, x := range row {
			norm += x * x
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for e := range row {
				row[e] /= norm
			}
		}
		emb[i] = row
	}
	labels := KMeans(emb, k, seed, 50)
	out := make(map[string]int, n)
	for i, u := range users {
		out[u] = labels[i]
	}
	return out
}

// KMeans clusters points into k groups with Lloyd's algorithm and k-means++
// seeding. It returns a label per point. Deterministic given the seed.
func KMeans(points [][]float64, k int, seed int64, maxIter int) []int {
	n := len(points)
	labels := make([]int, n)
	if n == 0 || k <= 1 {
		return labels
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i, p := range points {
			d2[i] = sqDist(p, centers[0])
			for _, c := range centers[1:] {
				if d := sqDist(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			sum += d2[i]
		}
		var pick int
		if sum <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			for i := range d2 {
				r -= d2[i]
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}

	if maxIter <= 0 {
		maxIter = 50
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best := 0
			bestD := sqDist(p, centers[0])
			for c := 1; c < k; c++ {
				if d := sqDist(p, centers[c]); d < bestD {
					bestD = d
					best = c
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d := range p {
				next[c][d] += p[d]
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centers[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(next[c], points[far])
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(counts[c])
			}
		}
		centers = next
	}
	return labels
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
