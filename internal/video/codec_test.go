package video

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := Synthesize("roundtrip-clip", 4, DefaultSynthOptions(), rng)
	v.NominalSeconds = 123.5
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != v.ID || got.FPS != v.FPS || got.NominalSeconds != v.NominalSeconds {
		t.Errorf("metadata changed: %+v", got)
	}
	if len(got.Frames) != len(v.Frames) {
		t.Fatalf("frames = %d, want %d", len(got.Frames), len(v.Frames))
	}
	// Quantization error is at most 0.5 intensity levels.
	for i := range v.Frames {
		for p := range v.Frames[i].Pix {
			if d := math.Abs(got.Frames[i].Pix[p] - v.Frames[i].Pix[p]); d > 0.5 {
				t.Fatalf("frame %d pixel %d off by %g", i, p, d)
			}
		}
	}
}

func TestCodecSignatureSurvivesQuantization(t *testing.T) {
	// The point of the codec: a decoded clip must produce essentially the
	// same cut structure as the original.
	rng := rand.New(rand.NewSource(9))
	v := Synthesize("q", 2, DefaultSynthOptions(), rng)
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := DetectCuts(v, DefaultCutOptions())
	b := DetectCuts(got, DefaultCutOptions())
	if len(a) != len(b) {
		t.Fatalf("cut counts differ after codec: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cut positions differ: %v vs %v", a, b)
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, &Video{}); !errors.Is(err, ErrCodecNoFrames) {
		t.Errorf("empty video: got %v", err)
	}
	mixed := &Video{Frames: []*Frame{NewFrame(4, 4), NewFrame(8, 8)}}
	if err := Encode(&bytes.Buffer{}, mixed); err == nil {
		t.Error("mixed frame sizes accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte("WRONGMAG..."))); !errors.Is(err, ErrCodecMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	// Truncated stream.
	rng := rand.New(rand.NewSource(1))
	v := Synthesize("t", 1, DefaultSynthOptions(), rng)
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); !errors.Is(err, ErrCodecCorrupt) {
		t.Errorf("truncated: got %v", err)
	}
}

func TestCodecFileHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := Synthesize("file-clip", 3, DefaultSynthOptions(), rng)
	path := filepath.Join(t.TempDir(), "clip.vv")
	if err := WriteFile(path, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "file-clip" || len(got.Frames) != len(v.Frames) {
		t.Errorf("file round trip broken: %s, %d frames", got.ID, len(got.Frames))
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.vv")); err == nil {
		t.Error("missing file accepted")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := Synthesize("bench", 1, DefaultSynthOptions(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, v); err != nil {
			b.Fatal(err)
		}
	}
}
