package video

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// A tiny raw clip container (".vv"): fixed header, length-prefixed id, then
// frames as rows of uint8 intensities. It stands in for real codecs so
// clips can live on disk and stream through the CLI and server without any
// external decoder. Quantization to 8 bits matches the signature pipeline's
// intensity domain exactly.

const (
	codecMagic   = "VRECVID1"
	maxFrameSide = 1 << 14
	maxFrames    = 1 << 22
)

// Codec errors.
var (
	ErrCodecMagic    = errors.New("video: not a vrec clip file")
	ErrCodecCorrupt  = errors.New("video: corrupt clip file")
	ErrCodecNoFrames = errors.New("video: clip has no frames to encode")
)

// Encode writes the video to w. Frames must all share one size.
func Encode(w io.Writer, v *Video) error {
	if len(v.Frames) == 0 {
		return ErrCodecNoFrames
	}
	fw, fh := v.Frames[0].W, v.Frames[0].H
	for i, f := range v.Frames {
		if f.W != fw || f.H != fh {
			return fmt.Errorf("video: frame %d is %dx%d, first frame is %dx%d", i, f.W, f.H, fw, fh)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := writeString(bw, v.ID); err != nil {
		return err
	}
	hdr := []any{
		uint32(fw), uint32(fh), uint32(len(v.Frames)),
		math.Float64bits(v.FPS), math.Float64bits(v.NominalSeconds),
	}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	row := make([]byte, fw*fh)
	for _, f := range v.Frames {
		for i, p := range f.Pix {
			row[i] = uint8(clamp(math.Round(p)))
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a video from r.
func Decode(r io.Reader) (*Video, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodecMagic, err)
	}
	if string(head) != codecMagic {
		return nil, ErrCodecMagic
	}
	id, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("%w: id: %v", ErrCodecCorrupt, err)
	}
	var fw, fh, n uint32
	var fpsBits, nomBits uint64
	for _, dst := range []any{&fw, &fh, &n, &fpsBits, &nomBits} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrCodecCorrupt, err)
		}
	}
	if fw == 0 || fh == 0 || fw > maxFrameSide || fh > maxFrameSide || n == 0 || n > maxFrames {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%dx%d", ErrCodecCorrupt, fw, fh, n)
	}
	v := &Video{
		ID:             id,
		FPS:            math.Float64frombits(fpsBits),
		NominalSeconds: math.Float64frombits(nomBits),
	}
	row := make([]byte, int(fw)*int(fh))
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCodecCorrupt, i, err)
		}
		f := NewFrame(int(fw), int(fh))
		for p, b := range row {
			f.Pix[p] = float64(b)
		}
		v.Frames = append(v.Frames, f)
	}
	return v, nil
}

// WriteFile encodes the video to a file.
func WriteFile(path string, v *Video) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a video from a file.
func ReadFile(path string) (*Video, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 1<<16 {
		return fmt.Errorf("video: id too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
