package video

import (
	"fmt"
	"math"
	"math/rand"
)

// SynthOptions controls procedural clip generation.
type SynthOptions struct {
	Width, Height  int     // frame size of the rendered proxy
	Shots          int     // number of shots
	FramesPerShot  int     // rendered frames per shot
	FPS            float64 // rendered frame rate
	NominalSeconds float64 // advertised clip duration
	TopicJitter    float64 // per-shot deviation from the topic's look (0..1)
}

// DefaultSynthOptions are small enough to keep experiments fast while giving
// every clip detectable shot structure and within-shot motion.
func DefaultSynthOptions() SynthOptions {
	return SynthOptions{
		Width: 32, Height: 32,
		Shots:          4,
		FramesPerShot:  14,
		FPS:            8,
		NominalSeconds: 420,
		TopicJitter:    0.15,
	}
}

// ShotSpec identifies one canonical shot: the topic whose visual style it
// carries and the seed that fixes its exact appearance. Equal specs render
// identically in every video — this is how the dataset models shared footage
// between clips returned for the same query (concert recordings, reused news
// material), the graded content matches κJ exploits.
type ShotSpec struct {
	Topic int
	Seed  int64
}

// topicStyle is the deterministic visual identity of a topic: videos about
// the same topic share background tone, blob count and motion energy, so
// content similarity correlates with topic relevance just as clips returned
// for one YouTube query share visual material.
type topicStyle struct {
	baseIntensity float64 // background tone
	gradient      float64 // horizontal gradient strength
	blobs         int     // number of moving bright/dark blobs
	blobAmp       float64 // blob intensity amplitude
	motion        float64 // blob speed in pixels/frame
}

func styleFor(topic int) topicStyle {
	// Spread topics over visual parameter space deterministically.
	h := uint64(topic)*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b
	f := func(shift uint) float64 {
		return float64((h>>shift)&0xffff) / 65535.0
	}
	return topicStyle{
		baseIntensity: 40 + 160*f(0),
		gradient:      10 + 50*f(8),
		blobs:         2 + int(5*f(16)),
		blobAmp:       25 + 130*f(24),
		motion:        0.3 + 3.4*f(32),
	}
}

type blob struct {
	x, y   float64
	vx, vy float64
	r      float64
	amp    float64
}

// SynthesizeFromShots renders the given shots in order. A shot's appearance
// depends only on its spec and the options, so videos listing the same spec
// contain identical footage for that shot.
func SynthesizeFromShots(id string, specs []ShotSpec, opts SynthOptions) *Video {
	if opts.Width <= 0 || opts.Height <= 0 || opts.FramesPerShot <= 0 || len(specs) == 0 {
		panic(fmt.Sprintf("video: invalid synthesis input (%d specs, opts %+v)", len(specs), opts))
	}
	topic := specs[0].Topic
	v := &Video{
		ID:             id,
		Topic:          topic,
		FPS:            opts.FPS,
		NominalSeconds: opts.NominalSeconds,
	}
	v.Frames = make([]*Frame, 0, len(specs)*opts.FramesPerShot)
	for _, spec := range specs {
		v.Frames = append(v.Frames, renderShot(spec, opts)...)
	}
	return v
}

// renderShot renders one canonical shot: style parameters jittered by the
// spec's own rng, blobs moving and bouncing for FramesPerShot frames.
func renderShot(spec ShotSpec, opts SynthOptions) []*Frame {
	st := styleFor(spec.Topic)
	rng := rand.New(rand.NewSource(spec.Seed))
	j := opts.TopicJitter
	if j <= 0 {
		j = 0.15
	}
	// Shot-level appearance: the base intensity swings widely (±40%) so
	// adjacent shots differ in histogram space and cuts stay detectable.
	base := clamp(st.baseIntensity * (0.6 + 0.8*rng.Float64()))
	grad := st.gradient * (1 + j*(rng.Float64()*2-1))
	motion := st.motion * (1 + j*(rng.Float64()*2-1))

	blobs := make([]blob, st.blobs)
	for b := range blobs {
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		blobs[b] = blob{
			x:   rng.Float64() * float64(opts.Width),
			y:   rng.Float64() * float64(opts.Height),
			vx:  (rng.Float64()*2 - 1) * motion,
			vy:  (rng.Float64()*2 - 1) * motion,
			r:   2.5 + rng.Float64()*4,
			amp: sign * st.blobAmp * (0.7 + 0.6*rng.Float64()),
		}
	}
	frames := make([]*Frame, 0, opts.FramesPerShot)
	for t := 0; t < opts.FramesPerShot; t++ {
		f := NewFrame(opts.Width, opts.Height)
		renderFrame(f, base, grad, blobs)
		frames = append(frames, f)
		for b := range blobs {
			blobs[b].x, blobs[b].vx = bounce(blobs[b].x+blobs[b].vx, blobs[b].vx, float64(opts.Width))
			blobs[b].y, blobs[b].vy = bounce(blobs[b].y+blobs[b].vy, blobs[b].vy, float64(opts.Height))
		}
	}
	return frames
}

// Synthesize renders a clip of opts.Shots freshly-drawn shots for the topic.
// The rng drives shot seeds only, so a fixed (topic, rng state) pair renders
// identically. Clips that should share footage are built directly with
// SynthesizeFromShots.
func Synthesize(id string, topic int, opts SynthOptions, rng *rand.Rand) *Video {
	if opts.Shots <= 0 {
		panic(fmt.Sprintf("video: invalid synth options %+v", opts))
	}
	specs := make([]ShotSpec, opts.Shots)
	for s := range specs {
		specs[s] = ShotSpec{Topic: topic, Seed: rng.Int63()}
	}
	return SynthesizeFromShots(id, specs, opts)
}

func renderFrame(f *Frame, base, grad float64, blobs []blob) {
	w := float64(f.W)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := base + grad*(float64(x)/w-0.5)
			for _, b := range blobs {
				dx := float64(x) - b.x
				dy := float64(y) - b.y
				d2 := dx*dx + dy*dy
				v += b.amp * math.Exp(-d2/(2*b.r*b.r))
			}
			f.Set(x, y, v)
		}
	}
}

// bounce reflects a blob coordinate off the frame edges, flipping its
// velocity, so blobs never jump across the frame (a jump would read as a
// spurious cut to the histogram detector).
func bounce(pos, vel, max float64) (float64, float64) {
	if pos < 0 {
		return -pos, -vel
	}
	if pos >= max {
		return 2*max - pos - 1e-9, -vel
	}
	return pos, vel
}
