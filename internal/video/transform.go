package video

import "math/rand"

// Transformations model the user edits the paper's robustness story depends
// on: "videos are user uploaded data in Youtube, and a large portion of them
// have been edited or undergone different variations" (§5.3.4). Each
// operator returns a new Video and leaves the input untouched.

// Brighten shifts every pixel by delta (photometric variation).
func Brighten(v *Video, delta float64) *Video {
	w := v.Clone()
	for _, f := range w.Frames {
		for i, p := range f.Pix {
			f.Pix[i] = clamp(p + delta)
		}
	}
	return w
}

// Contrast rescales intensities around 128 by the given factor.
func Contrast(v *Video, factor float64) *Video {
	w := v.Clone()
	for _, f := range w.Frames {
		for i, p := range f.Pix {
			f.Pix[i] = clamp(128 + (p-128)*factor)
		}
	}
	return w
}

// AddNoise adds zero-mean Gaussian noise with the given sigma (encoding /
// compression artifacts).
func AddNoise(v *Video, sigma float64, rng *rand.Rand) *Video {
	w := v.Clone()
	for _, f := range w.Frames {
		for i, p := range f.Pix {
			f.Pix[i] = clamp(p + rng.NormFloat64()*sigma)
		}
	}
	return w
}

// CropShift translates the content by (dx, dy), filling exposed borders by
// edge replication (spatial frame editing / content shift within frames).
func CropShift(v *Video, dx, dy int) *Video {
	w := v.Clone()
	for fi, f := range v.Frames {
		g := w.Frames[fi]
		for y := 0; y < f.H; y++ {
			sy := clampInt(y-dy, 0, f.H-1)
			for x := 0; x < f.W; x++ {
				sx := clampInt(x-dx, 0, f.W-1)
				g.Pix[y*f.W+x] = f.Pix[sy*f.W+sx]
			}
		}
	}
	return w
}

// DropFrames removes every n-th frame (temporal editing: frame drops).
func DropFrames(v *Video, n int) *Video {
	if n <= 1 {
		return v.Clone()
	}
	w := *v
	w.Frames = nil
	for i, f := range v.Frames {
		if (i+1)%n == 0 {
			continue
		}
		w.Frames = append(w.Frames, f.Clone())
	}
	return &w
}

// InsertFrames duplicates every n-th frame (temporal editing: stutter /
// inserted material).
func InsertFrames(v *Video, n int) *Video {
	if n <= 0 {
		return v.Clone()
	}
	w := *v
	w.Frames = nil
	for i, f := range v.Frames {
		w.Frames = append(w.Frames, f.Clone())
		if (i+1)%n == 0 {
			w.Frames = append(w.Frames, f.Clone())
		}
	}
	return &w
}

// ReorderShots permutes whole shots (temporal sequence editing — the case
// that defeats order-bound measures like DTW and ERP but not the paper's
// set-based κJ). Shot boundaries are detected with DetectCuts.
func ReorderShots(v *Video, rng *rand.Rand) *Video {
	shots := Shots(v, DefaultCutOptions())
	if len(shots) < 2 {
		return v.Clone()
	}
	order := rng.Perm(len(shots))
	w := *v
	w.Frames = make([]*Frame, 0, len(v.Frames))
	for _, si := range order {
		for i := shots[si].Start; i < shots[si].End; i++ {
			w.Frames = append(w.Frames, v.Frames[i].Clone())
		}
	}
	return &w
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
