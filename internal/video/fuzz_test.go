package video

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the clip decoder.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("VRECVID1"))
	f.Add([]byte("WRONGMAG"))
	f.Add([]byte{})
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(1))
	v := Synthesize("seed", 1, SynthOptions{
		Width: 8, Height: 8, Shots: 2, FramesPerShot: 4, FPS: 8, NominalSeconds: 10,
	}, rng)
	if err := Encode(&buf, v); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded clip must be internally consistent.
		for i, fr := range got.Frames {
			if len(fr.Pix) != fr.W*fr.H {
				t.Fatalf("frame %d: %d pixels for %dx%d", i, len(fr.Pix), fr.W, fr.H)
			}
			for _, p := range fr.Pix {
				if p < 0 || p > 255 {
					t.Fatalf("pixel out of range: %g", p)
				}
			}
		}
	})
}
