package video

import "time"

// Video is a clip: a rendered frame sequence plus sharing-community
// metadata. NominalSeconds is the clip's advertised duration used for the
// paper's "hours of video" dataset accounting; the rendered Frames are a
// short proxy sequence carrying the clip's visual identity (see DESIGN.md:
// signature extraction touches every rendered frame, while collection sizes
// are measured in nominal hours exactly as the paper measures them).
type Video struct {
	ID             string
	Title          string
	Topic          int     // latent topic driving both content and audience
	FPS            float64 // frames per second of the rendered proxy
	NominalSeconds float64 // advertised clip duration (≤ 600 per the paper)
	Frames         []*Frame
}

// RenderedSeconds returns the duration of the rendered proxy sequence.
func (v *Video) RenderedSeconds() float64 {
	if v.FPS <= 0 {
		return 0
	}
	return float64(len(v.Frames)) / v.FPS
}

// NominalDuration returns the advertised duration as a time.Duration.
func (v *Video) NominalDuration() time.Duration {
	return time.Duration(v.NominalSeconds * float64(time.Second))
}

// Clone deep-copies the video including all frames.
func (v *Video) Clone() *Video {
	w := *v
	w.Frames = make([]*Frame, len(v.Frames))
	for i, f := range v.Frames {
		w.Frames[i] = f.Clone()
	}
	return &w
}

// ReleaseFrames drops the rendered frames so a processed video stops holding
// pixel memory. Signature extraction happens once at ingest; afterwards only
// the compact signature series is retained, mirroring how the real system
// would not keep decoded video in memory.
func (v *Video) ReleaseFrames() { v.Frames = nil }
