package video

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testVideo(topic int, seed int64) *Video {
	rng := rand.New(rand.NewSource(seed))
	return Synthesize("v", topic, DefaultSynthOptions(), rng)
}

func TestFrameAccessors(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(2, 1, 100)
	if got := f.At(2, 1); got != 100 {
		t.Errorf("At = %g, want 100", got)
	}
	f.Set(0, 0, -5)
	if got := f.At(0, 0); got != 0 {
		t.Errorf("clamp low: got %g", got)
	}
	f.Set(3, 2, 300)
	if got := f.At(3, 2); got != 255 {
		t.Errorf("clamp high: got %g", got)
	}
}

func TestNewFramePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x0 frame")
		}
	}()
	NewFrame(0, 0)
}

func TestFrameMeanAndBlockMean(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(0, 0, 10)
	f.Set(1, 0, 20)
	f.Set(0, 1, 30)
	f.Set(1, 1, 40)
	if got := f.Mean(); got != 25 {
		t.Errorf("Mean = %g, want 25", got)
	}
	if got := f.BlockMean(0, 0, 1, 2); got != 20 {
		t.Errorf("left column BlockMean = %g, want 20", got)
	}
	if got := f.BlockMean(-5, -5, 10, 10); got != 25 {
		t.Errorf("clipped BlockMean = %g, want 25", got)
	}
	if got := f.BlockMean(1, 1, 1, 1); got != 0 {
		t.Errorf("empty BlockMean = %g, want 0", got)
	}
}

func TestHistogramNormalized(t *testing.T) {
	f := NewFrame(8, 8)
	for i := range f.Pix {
		f.Pix[i] = float64(i * 4 % 256)
	}
	h := f.Histogram(16)
	var sum float64
	for _, x := range h {
		if x < 0 {
			t.Fatalf("negative bin %g", x)
		}
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram sum = %g, want 1", sum)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := testVideo(3, 7)
	b := testVideo(3, 7)
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		for p := range a.Frames[i].Pix {
			if a.Frames[i].Pix[p] != b.Frames[i].Pix[p] {
				t.Fatalf("frame %d pixel %d differs", i, p)
			}
		}
	}
}

func TestSynthesizeFrameCount(t *testing.T) {
	opts := DefaultSynthOptions()
	v := testVideo(0, 1)
	want := opts.Shots * opts.FramesPerShot
	if len(v.Frames) != want {
		t.Errorf("frames = %d, want %d", len(v.Frames), want)
	}
	if v.RenderedSeconds() <= 0 {
		t.Error("rendered seconds should be positive")
	}
	if v.NominalDuration() <= 0 {
		t.Error("nominal duration should be positive")
	}
}

func TestSameTopicLooksMoreAlike(t *testing.T) {
	// Mean intensity of same-topic clips should be closer than across the
	// most distant topic pair — a coarse check that topics carry identity.
	a1 := testVideo(1, 10)
	a2 := testVideo(1, 11)
	sameDiff := absDiff(meanIntensity(a1), meanIntensity(a2))
	// Find a topic whose look is far from topic 1.
	worst := 0.0
	for topic := 2; topic < 12; topic++ {
		b := testVideo(topic, 12)
		if d := absDiff(meanIntensity(a1), meanIntensity(b)); d > worst {
			worst = d
		}
	}
	if sameDiff >= worst {
		t.Errorf("same-topic diff %g >= max cross-topic diff %g", sameDiff, worst)
	}
}

func meanIntensity(v *Video) float64 {
	var s float64
	for _, f := range v.Frames {
		s += f.Mean()
	}
	return s / float64(len(v.Frames))
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestDetectCutsFindsShotBoundaries(t *testing.T) {
	opts := DefaultSynthOptions()
	v := testVideo(5, 3)
	cuts := DetectCuts(v, DefaultCutOptions())
	if len(cuts) == 0 {
		t.Fatal("no cuts detected in a multi-shot video")
	}
	// Every true boundary is a multiple of FramesPerShot; allow ±1 slack.
	for _, c := range cuts {
		r := c % opts.FramesPerShot
		if r > 1 && r < opts.FramesPerShot-1 {
			t.Errorf("cut at %d is far from any true shot boundary", c)
		}
	}
}

func TestDetectCutsShortVideo(t *testing.T) {
	v := &Video{Frames: []*Frame{NewFrame(4, 4)}, FPS: 8}
	if cuts := DetectCuts(v, DefaultCutOptions()); cuts != nil {
		t.Errorf("cuts on 1-frame video: %v", cuts)
	}
}

func TestShotsPartitionVideo(t *testing.T) {
	v := testVideo(2, 9)
	shots := Shots(v, DefaultCutOptions())
	if len(shots) == 0 {
		t.Fatal("no shots")
	}
	if shots[0].Start != 0 {
		t.Errorf("first shot starts at %d", shots[0].Start)
	}
	for i := 1; i < len(shots); i++ {
		if shots[i].Start != shots[i-1].End {
			t.Errorf("gap between shot %d and %d", i-1, i)
		}
	}
	if shots[len(shots)-1].End != len(v.Frames) {
		t.Errorf("last shot ends at %d, want %d", shots[len(shots)-1].End, len(v.Frames))
	}
}

func TestKeyframes(t *testing.T) {
	v := testVideo(2, 9)
	shots := Shots(v, DefaultCutOptions())
	keys := Keyframes(v, shots, 3)
	if len(keys) < len(shots) {
		t.Errorf("got %d keyframes for %d shots", len(keys), len(shots))
	}
	if len(keys) > 3*len(shots) {
		t.Errorf("got %d keyframes, cap is %d", len(keys), 3*len(shots))
	}
	// Degenerate maxPerShot.
	if got := Keyframes(v, shots, 0); len(got) != len(shots) {
		t.Errorf("maxPerShot=0 should give one per shot, got %d", len(got))
	}
}

func TestBrighten(t *testing.T) {
	v := testVideo(1, 1)
	w := Brighten(v, 30)
	if w == v {
		t.Fatal("Brighten must not alias input")
	}
	orig := v.Frames[0].At(5, 5)
	got := w.Frames[0].At(5, 5)
	if orig < 220 && got != orig+30 {
		t.Errorf("pixel %g -> %g, want +30", orig, got)
	}
}

func TestContrastPreservesMidpoint(t *testing.T) {
	v := &Video{Frames: []*Frame{NewFrame(2, 2)}, FPS: 8}
	v.Frames[0].Set(0, 0, 128)
	v.Frames[0].Set(1, 0, 100)
	w := Contrast(v, 1.5)
	if got := w.Frames[0].At(0, 0); got != 128 {
		t.Errorf("midpoint moved to %g", got)
	}
	if got := w.Frames[0].At(1, 0); got != 128+(100-128)*1.5 {
		t.Errorf("contrast pixel = %g", got)
	}
}

func TestCropShiftMovesContent(t *testing.T) {
	v := &Video{Frames: []*Frame{NewFrame(4, 4)}, FPS: 8}
	v.Frames[0].Set(1, 1, 200)
	w := CropShift(v, 1, 0)
	if got := w.Frames[0].At(2, 1); got != 200 {
		t.Errorf("shifted pixel = %g, want 200", got)
	}
}

func TestDropAndInsertFrames(t *testing.T) {
	v := testVideo(1, 2)
	n := len(v.Frames)
	d := DropFrames(v, 4)
	if len(d.Frames) != n-n/4 {
		t.Errorf("DropFrames: %d, want %d", len(d.Frames), n-n/4)
	}
	i := InsertFrames(v, 4)
	if len(i.Frames) != n+n/4 {
		t.Errorf("InsertFrames: %d, want %d", len(i.Frames), n+n/4)
	}
	if got := DropFrames(v, 1); len(got.Frames) != n {
		t.Errorf("DropFrames(1) should be identity copy, got %d frames", len(got.Frames))
	}
}

func TestReorderShotsKeepsFrameCount(t *testing.T) {
	v := testVideo(3, 4)
	rng := rand.New(rand.NewSource(1))
	w := ReorderShots(v, rng)
	if len(w.Frames) != len(v.Frames) {
		t.Errorf("reordered frame count %d, want %d", len(w.Frames), len(v.Frames))
	}
	// Total intensity is preserved by a permutation.
	if got, want := meanIntensity(w), meanIntensity(v); absDiff(got, want) > 1e-9 {
		t.Errorf("mean intensity changed: %g vs %g", got, want)
	}
}

func TestAddNoiseBounded(t *testing.T) {
	v := testVideo(1, 5)
	w := AddNoise(v, 10, rand.New(rand.NewSource(2)))
	for _, f := range w.Frames {
		for _, p := range f.Pix {
			if p < 0 || p > 255 {
				t.Fatalf("pixel out of range: %g", p)
			}
		}
	}
}

func TestCloneAndRelease(t *testing.T) {
	v := testVideo(1, 6)
	w := v.Clone()
	w.Frames[0].Set(0, 0, 7)
	if v.Frames[0].At(0, 0) == 7 && v.Frames[0].At(0, 0) == w.Frames[0].At(0, 0) {
		t.Error("Clone shares frame storage")
	}
	w.ReleaseFrames()
	if w.Frames != nil {
		t.Error("ReleaseFrames did not drop frames")
	}
	if v.Frames == nil {
		t.Error("ReleaseFrames affected the original")
	}
}

// Property: every transformation keeps pixels in [0,255] and never mutates
// its input.
func TestPropertyTransformsSafe(t *testing.T) {
	f := func(seed int64, topicRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := Synthesize("p", int(topicRaw%16), DefaultSynthOptions(), rng)
		before := meanIntensity(v)
		outs := []*Video{
			Brighten(v, rng.Float64()*80-40),
			Contrast(v, 0.5+rng.Float64()),
			AddNoise(v, rng.Float64()*20, rng),
			CropShift(v, rng.Intn(7)-3, rng.Intn(7)-3),
			DropFrames(v, 2+rng.Intn(4)),
			InsertFrames(v, 2+rng.Intn(4)),
			ReorderShots(v, rng),
		}
		if meanIntensity(v) != before {
			return false // input mutated
		}
		for _, o := range outs {
			if len(o.Frames) == 0 {
				return false
			}
			for _, fr := range o.Frames {
				for _, p := range fr.Pix {
					if p < 0 || p > 255 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHistDiffBounds(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 0, 1}
	if got := HistDiff(a, b); got != 2 {
		t.Errorf("disjoint HistDiff = %g, want 2", got)
	}
	if got := HistDiff(a, a); got != 0 {
		t.Errorf("self HistDiff = %g, want 0", got)
	}
}

func TestSynthesizeFromShotsSharedSpecsIdentical(t *testing.T) {
	opts := DefaultSynthOptions()
	shared := ShotSpec{Topic: 3, Seed: 42}
	a := SynthesizeFromShots("a", []ShotSpec{shared, {Topic: 3, Seed: 7}}, opts)
	b := SynthesizeFromShots("b", []ShotSpec{{Topic: 3, Seed: 9}, shared}, opts)
	// a's first shot must equal b's second shot pixel for pixel.
	n := opts.FramesPerShot
	for f := 0; f < n; f++ {
		fa := a.Frames[f]
		fb := b.Frames[n+f]
		for p := range fa.Pix {
			if fa.Pix[p] != fb.Pix[p] {
				t.Fatalf("shared shot differs at frame %d pixel %d", f, p)
			}
		}
	}
	// And their unique shots must differ.
	if a.Frames[n].Mean() == b.Frames[0].Mean() {
		t.Error("unique shots coincidentally identical")
	}
}

func TestSynthesizeFromShotsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty specs")
		}
	}()
	SynthesizeFromShots("x", nil, DefaultSynthOptions())
}
