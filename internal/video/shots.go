package video

import "math"

// Shot is a half-open frame range [Start, End) delimited by two cuts.
type Shot struct {
	Start, End int
}

// Len returns the number of frames in the shot.
func (s Shot) Len() int { return s.End - s.Start }

// CutOptions tunes the histogram-difference cut detector.
type CutOptions struct {
	Bins       int     // histogram bins
	Window     int     // sliding window for the adaptive threshold
	Sigma      float64 // multiples of the window's std above its mean
	MinDiff    float64 // absolute floor on the histogram difference at a cut
	MinShotLen int     // suppress cuts closer than this to the previous one
}

// DefaultCutOptions mirror the common settings of histogram-based detectors.
func DefaultCutOptions() CutOptions {
	return CutOptions{Bins: 16, Window: 8, Sigma: 3, MinDiff: 0.35, MinShotLen: 3}
}

// DetectCuts returns the indices i where a new shot begins (frame i starts a
// new shot; index 0 is never reported). It substitutes for the AT&T TRECVID
// detector [18]: successive-frame histogram L1 differences are compared
// against an adaptive threshold (window mean + Sigma·std) with an absolute
// floor, and cuts within MinShotLen of the previous cut are suppressed.
func DetectCuts(v *Video, opts CutOptions) []int {
	if len(v.Frames) < 2 {
		return nil
	}
	if opts.Bins <= 0 {
		opts.Bins = 16
	}
	if opts.Window <= 1 {
		opts.Window = 8
	}
	diffs := make([]float64, len(v.Frames)-1)
	prev := v.Frames[0].Histogram(opts.Bins)
	for i := 1; i < len(v.Frames); i++ {
		cur := v.Frames[i].Histogram(opts.Bins)
		diffs[i-1] = HistDiff(prev, cur)
		prev = cur
	}
	var cuts []int
	lastCut := 0
	for i, d := range diffs {
		frame := i + 1 // diff i is between frames i and i+1
		if d < opts.MinDiff {
			continue
		}
		if frame-lastCut < opts.MinShotLen {
			continue
		}
		lo := i - opts.Window
		if lo < 0 {
			lo = 0
		}
		mean, std := meanStd(diffs[lo:i])
		if i == 0 || d > mean+opts.Sigma*std {
			cuts = append(cuts, frame)
			lastCut = frame
		}
	}
	return cuts
}

// Shots segments the video into consecutive shots using DetectCuts.
func Shots(v *Video, opts CutOptions) []Shot {
	cuts := DetectCuts(v, opts)
	var shots []Shot
	start := 0
	for _, c := range cuts {
		shots = append(shots, Shot{Start: start, End: c})
		start = c
	}
	if start < len(v.Frames) {
		shots = append(shots, Shot{Start: start, End: len(v.Frames)})
	}
	return shots
}

// Keyframes samples up to maxPerShot evenly spaced frames from each shot
// (always at least one per non-empty shot) and returns them in temporal
// order. These are the "temporally consecutive keyframes" over which cuboid
// signatures are built.
func Keyframes(v *Video, shots []Shot, maxPerShot int) []*Frame {
	if maxPerShot <= 0 {
		maxPerShot = 1
	}
	var keys []*Frame
	for _, s := range shots {
		n := s.Len()
		if n <= 0 {
			continue
		}
		take := maxPerShot
		if take > n {
			take = n
		}
		for k := 0; k < take; k++ {
			// Evenly spaced positions inside the shot.
			idx := s.Start + (2*k+1)*n/(2*take)
			if idx >= s.End {
				idx = s.End - 1
			}
			keys = append(keys, v.Frames[idx])
		}
	}
	return keys
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
