// Package video provides the video substrate of the reproduction: intensity
// frames, a procedural scene synthesizer standing in for the paper's crawled
// YouTube clips, the editing/transformation operators used to create
// near-duplicates, and histogram-based shot (cut) detection replacing the
// AT&T detector of [18].
//
// The content pipeline downstream (cuboid signatures, EMD matching) consumes
// only pixel intensities, so any frame source with controllable shot
// structure and editability exercises the same code paths as real videos.
package video

import "fmt"

// Frame is a single grayscale frame with intensities in [0, 255].
type Frame struct {
	W, H int
	Pix  []float64 // row-major, len W*H
}

// NewFrame allocates a zeroed W×H frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("video: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y).
func (f *Frame) At(x, y int) float64 { return f.Pix[y*f.W+x] }

// Set writes the intensity at (x, y), clamping to [0, 255].
func (f *Frame) Set(x, y int, v float64) {
	f.Pix[y*f.W+x] = clamp(v)
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// Mean returns the average intensity of the frame.
func (f *Frame) Mean() float64 {
	var s float64
	for _, p := range f.Pix {
		s += p
	}
	return s / float64(len(f.Pix))
}

// BlockMean returns the average intensity of the block covering pixel columns
// [x0, x1) and rows [y0, y1), clipped to the frame bounds.
func (f *Frame) BlockMean(x0, y0, x1, y1 int) float64 {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	var s float64
	for y := y0; y < y1; y++ {
		row := f.Pix[y*f.W : y*f.W+f.W]
		for x := x0; x < x1; x++ {
			s += row[x]
		}
	}
	return s / float64((x1-x0)*(y1-y0))
}

// Histogram returns a normalized intensity histogram with the given number
// of equal-width bins over [0, 255].
func (f *Frame) Histogram(bins int) []float64 {
	h := make([]float64, bins)
	scale := float64(bins) / 256.0
	for _, p := range f.Pix {
		b := int(p * scale)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	n := float64(len(f.Pix))
	for i := range h {
		h[i] /= n
	}
	return h
}

// HistDiff returns the L1 distance between two normalized histograms.
func HistDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
