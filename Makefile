GO ?= go

.PHONY: all check build vet test test-race test-faults race bench bench-shards bench-batch bench-updates vrecbench vrecbench-short bench-compare vrecload vrecload-smoke load-compare experiments experiments-paper fuzz examples clean

all: check

# The full gate: build, vet, tests, the race detector over everything
# (including the reader/writer stress test), then the fault matrix.
check: build vet test test-race test-faults

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The fault matrix: chaos, circuit-breaker and transactional-drain tests
# re-run under the race detector at -count=2 (the second run shakes out any
# state a fault-injected first pass leaves behind).
test-faults:
	$(GO) test -run 'Chaos|Breaker|Drain' -race -count=2 ./internal/shard/... ./internal/server/...

race: test-race

# One testing.B bench per paper table/figure plus ablations and microbenches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Serving-path benchmark harness: fixed RecommendCtx workloads, JSON output
# with ns/op, qps, allocs/op and latency percentiles (see README). Includes
# the shards/{1,4,16} scatter-gather workloads, the shards/faulty
# degraded-path workload, and the unbatched/{1,8,64} vs batch/{1,8,64}
# batched-serving pairs.
vrecbench:
	$(GO) run ./cmd/vrecbench -out BENCH_PR8.json

vrecbench-short:
	$(GO) run ./cmd/vrecbench -short -out bench-short.json

# The scatter-gather scaling benchmark in isolation: the same fixture at 1
# and 16 shards, suitable for -cpuprofile (see internal/shard/prof_test.go).
bench-shards:
	$(GO) test ./internal/shard/ -run '^$$' -bench FanOut -benchtime 300x

# The write-path (Figure 5 maintenance) rows in isolation: re-run the
# updates/{small,storm} vrecbench workloads and diff them against the
# checked-in pre-CSR baseline (see DESIGN.md §17). Override the baseline
# with UPDATES_OLD=, e.g. against the last full run:
#   make bench-updates UPDATES_OLD=BENCH_PR10.json
UPDATES_OLD ?= BENCH_PR10_BASE.json
bench-updates:
	$(GO) run ./cmd/vrecbench -only updates/ -out bench-updates.json
	$(GO) run ./cmd/benchcompare -old $(UPDATES_OLD) -new bench-updates.json

# Diff two vrecbench reports (ns_per_op / allocs_per_op per workload).
# Override the endpoints with OLD=/NEW=, e.g.
#   make bench-compare OLD=BENCH_PR3.json NEW=bench-short.json
# A missing baseline or disjoint workload sets print a note and exit 0.
OLD ?= BENCH_PR7.json
NEW ?= BENCH_PR8.json
bench-compare:
	$(GO) run ./cmd/benchcompare -old $(OLD) -new $(NEW)

# The batching speedup table: diff the batch/N rows against the unbatched/N
# rows of one report (same Zipf query stream, same engine — the qps ratio is
# the aggregate gain of coalesced execution at round size N).
BENCH ?= BENCH_PR8.json
bench-batch:
	$(GO) run ./cmd/benchcompare -old $(BENCH) -new $(BENCH) -old-prefix unbatched/ -new-prefix batch/

# HTTP-level storm harness: regenerate the three BENCH_LOAD scenarios —
# unloaded baseline, a comment storm against the fixed limiter, and the same
# storm with the adaptive limiter + brownout (see README "Surviving traffic
# storms" for what the numbers mean). -service-time simulates a production-
# sized corpus so real queueing forms even on small CI boxes.
vrecload:
	$(GO) run ./cmd/vrecload -scenario unloaded -conc 4 -duration 5s \
	    -service-time 25ms -max-inflight 8 -max-queue 16 -query-timeout 250ms \
	    -out BENCH_LOAD.json
	$(GO) run ./cmd/vrecload -scenario storm/fixed -conc 24 -duration 8s \
	    -service-time 25ms -max-inflight 8 -max-queue 16 -query-timeout 250ms \
	    -storm-at 3s -storm-dur 2s -storm-factor 4 -out BENCH_LOAD.json -append
	$(GO) run ./cmd/vrecload -scenario storm/adaptive -conc 24 -duration 8s \
	    -service-time 25ms -max-inflight 8 -max-queue 12 -limit-floor 2 \
	    -limit-ceiling 12 -adjust-window 50ms -brownout -brownout-margin 35ms \
	    -query-timeout 65ms -storm-at 3s -storm-dur 2s -storm-factor 4 \
	    -out BENCH_LOAD.json -append

# CI smoke: one short closed-loop storm against an in-process server,
# asserting nonzero goodput, zero panics, and Retry-After on every 503.
vrecload-smoke:
	$(GO) run ./cmd/vrecload -scenario smoke/storm -conc 12 -duration 3s \
	    -service-time 10ms -max-inflight 4 -max-queue 8 -limit-floor 2 \
	    -limit-ceiling 12 -adjust-window 25ms -brownout -brownout-margin 20ms \
	    -query-timeout 60ms -storm-at 1s -storm-dur 1s -storm-factor 3 \
	    -out bench-load-smoke.json -check

# Diff two vrecload reports (goodput / p99 / p999 per scenario).
LOAD_OLD ?= BENCH_LOAD_PR9.json
LOAD_NEW ?= BENCH_LOAD.json
load-compare:
	$(GO) run ./cmd/benchcompare -old $(LOAD_OLD) -new $(LOAD_NEW)

# Regenerate every table and figure at the default (fast) scale.
experiments:
	$(GO) run ./cmd/experiments

# The paper's 50-200 hour sweep. Slow.
experiments-paper:
	$(GO) run ./cmd/experiments -scale paper

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test ./internal/btree/ -fuzz FuzzTreeOps -fuzztime 20s
	$(GO) test ./internal/hashing/ -fuzz FuzzShiftAddXor -fuzztime 10s
	$(GO) test ./internal/lsh/ -fuzz FuzzZOrderPrefix -fuzztime 10s
	$(GO) test ./internal/video/ -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/store/ -fuzz FuzzLoad -fuzztime 10s
	$(GO) test ./internal/store/ -fuzz FuzzReplayJournal -fuzztime 10s
	$(GO) test ./internal/store/ -fuzz FuzzReadTail -fuzztime 10s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/newsroom
	$(GO) run ./examples/adcampaign
	$(GO) run ./examples/livestream
	$(GO) run ./examples/archive
	$(GO) run ./examples/copyrightbot

clean:
	$(GO) clean -testcache
	rm -f test_output.txt bench_output.txt
