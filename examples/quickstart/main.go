// Quickstart: build a tiny sharing community, index it, and recommend
// videos for a clicked clip — the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"videorec"
	"videorec/internal/video"
)

// clip converts a synthesized video plus its social context into the public
// Clip type. A real deployment would decode uploaded footage instead.
func clip(v *video.Video, owner string, commenters ...string) videorec.Clip {
	c := videorec.Clip{
		ID:         v.ID,
		FPS:        v.FPS,
		Owner:      owner,
		Commenters: commenters,
	}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
	}
	return c
}

func main() {
	// Engine with the paper's tuned parameters (ω=0.7, k=60, CSF-SAR-H).
	eng := videorec.New(videorec.Options{})

	// A small community: two fandoms ("cats", topic 1; "trains", topic 2),
	// five clips each, plus one edited repost of the first cat clip.
	rng := rand.New(rand.NewSource(7))
	opts := video.DefaultSynthOptions()
	catFans := []string{"ada", "bo", "cy", "didi"}
	trainFans := []string{"ed", "fil", "gus", "hana"}

	var catClips []*video.Video
	for i := 0; i < 5; i++ {
		v := video.Synthesize(fmt.Sprintf("cat-%d", i), 1, opts, rng)
		catClips = append(catClips, v)
		if err := eng.Add(clip(v, catFans[i%len(catFans)], catFans...)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v := video.Synthesize(fmt.Sprintf("train-%d", i), 2, opts, rng)
		if err := eng.Add(clip(v, trainFans[i%len(trainFans)], trainFans...)); err != nil {
			log.Fatal(err)
		}
	}
	// An edited repost of cat-0: brightened and with dropped frames.
	repost := video.DropFrames(video.Brighten(catClips[0], 20), 7)
	repost.ID = "cat-0-repost"
	if err := eng.Add(clip(repost, "zel", "ada", "zel")); err != nil {
		log.Fatal(err)
	}

	eng.Build()
	fmt.Printf("indexed %d clips, %d sub-communities\n\n", eng.Len(), eng.SubCommunities())

	// A visitor clicked cat-0. What should the sidebar show?
	recs, err := eng.Recommend("cat-0", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations for cat-0:")
	for i, r := range recs {
		fmt.Printf("%d. %-14s score %.3f (content %.3f, social %.3f)\n",
			i+1, r.VideoID, r.Score, r.Content, r.Social)
	}
	// Expect: the repost ranks via content (matched footage), the other cat
	// clips via the shared fan community — and no train clips.
}
