// Ad campaign: advertisement is the paper's second motivating application —
// "an appropriate recommendation is a promising way of increasing the
// viewing rate to specific media data, enhancing the effect of online news
// broadcasting and advertisement".
//
// An advertiser holds a promo clip cut from the same footage pool as one
// fandom's videos and wants placement slots: the videos whose viewers are
// most likely to engage. The example contrasts three engines — content-only
// (CR), social-only (SR) and the fused CSF — and shows why fusion picks
// better slots: content alone finds only footage matches, social alone is
// fooled by cross-posted clips, fusion gets both signals.
//
//	go run ./examples/adcampaign
package main

import (
	"fmt"
	"log"

	"videorec"
	"videorec/internal/dataset"
)

func toClip(col *dataset.Collection, it *dataset.Item) videorec.Clip {
	v := it.Render(col.Opts.Synth)
	var commenters []string
	for _, cm := range it.Comments {
		if cm.Month < col.Opts.MonthsSource {
			commenters = append(commenters, cm.User)
		}
	}
	c := videorec.Clip{ID: it.ID, FPS: v.FPS, Owner: it.Owner, Commenters: commenters}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
	}
	return c
}

func main() {
	o := dataset.DefaultOptions()
	o.Hours = 6
	o.Users = 180
	o.Seed = 5
	col := dataset.Generate(o)

	build := func(opts videorec.Options) *videorec.Engine {
		eng := videorec.New(opts)
		for _, it := range col.Items {
			if err := eng.Add(toClip(col, it)); err != nil {
				log.Fatal(err)
			}
		}
		eng.Build()
		return eng
	}

	fused := build(videorec.Options{SubCommunities: 40})
	contentOnly := build(videorec.Options{SubCommunities: 40, ContentOnly: true})
	socialOnly := build(videorec.Options{SubCommunities: 40, SocialOnly: true})

	// The promo is the hottest clip of query theme 2 ("miley cyrus"): the
	// advertiser wants slots on videos relevant to it.
	promo := col.Queries[2].Sources[0]
	promoTopic := col.ByID[promo].Topic
	fmt.Printf("promo clip: %s (topic %d), looking for %d placement slots\n\n", promo, promoTopic, 6)

	quality := func(eng *videorec.Engine, name string) {
		recs, err := eng.Recommend(promo, 6)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		fmt.Printf("%s slots:\n", name)
		for i, r := range recs {
			rel := col.Relevance(promo, r.VideoID)
			mark := " "
			if rel >= 0.8 {
				mark = "✓"
				hits++
			}
			fmt.Printf("  %d. %-8s score %.3f  audience-fit %.2f %s\n", i+1, r.VideoID, r.Score, rel, mark)
		}
		fmt.Printf("  → %d/6 strong placements\n\n", hits)
	}

	quality(contentOnly, "content-only (CR)")
	quality(socialOnly, "social-only (SR)")
	quality(fused, "content-social fusion (CSF)")
}
