// Newsroom: online news broadcasting is one of the paper's motivating
// applications. Breaking-story footage gets re-cut, re-branded and reposted
// by many outlets; viewers are anonymous (no profile), so the sidebar must
// be driven by the clicked clip alone.
//
// This example builds a synthetic news community, then serves an anonymous
// visitor watching a fresh re-edit of a breaking story — a clip the index
// has never seen — via RecommendClip. Content relevance finds the other
// versions of the same footage; social relevance finds the follow-up
// coverage the same audience discusses.
//
//	go run ./examples/newsroom
package main

import (
	"fmt"
	"log"
	"math/rand"

	"videorec"
	"videorec/internal/dataset"
	"videorec/internal/video"
)

func toClip(v *video.Video, owner string, commenters []string) videorec.Clip {
	c := videorec.Clip{ID: v.ID, FPS: v.FPS, Owner: owner, Commenters: commenters}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
	}
	return c
}

func main() {
	// The "newsroom" is a topic-structured community: topics are stories,
	// fandoms are the audiences following them, near-duplicates are the
	// re-posts of wire footage.
	o := dataset.DefaultOptions()
	o.Hours = 6
	o.Users = 180
	o.Seed = 99
	col := dataset.Generate(o)

	eng := videorec.New(videorec.Options{SubCommunities: 40})
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		if err := eng.Add(toClip(v, it.Owner, commenters)); err != nil {
			log.Fatal(err)
		}
	}
	eng.Build()
	fmt.Printf("newsroom index: %d clips, %d audience sub-communities\n\n",
		eng.Len(), eng.SubCommunities())

	// Breaking story: an anonymous visitor is watching a BRAND NEW re-edit
	// of the top story's footage (not in the index) that a few known
	// commenters have already reacted to.
	story := col.Queries[0] // the hottest story
	source := col.ByID[story.Sources[0]]
	fresh := source.Render(o.Synth)
	fresh = video.Contrast(video.Brighten(fresh, 12), 1.1) // outlet re-grade
	fresh.ID = "breaking-recut"

	var earlyReactions []string
	for _, cm := range source.Comments[:min(5, len(source.Comments))] {
		earlyReactions = append(earlyReactions, cm.User)
	}
	visitorView := toClip(fresh, "wire-service", earlyReactions)

	recs, err := eng.RecommendClip(visitorView, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymous visitor is watching %q (a re-edit of %s)\n", fresh.ID, source.ID)
	fmt.Println("sidebar:")
	for i, r := range recs {
		it := col.ByID[r.VideoID]
		tag := "related coverage"
		switch {
		case r.VideoID == source.ID || it.DupOf() == source.ID:
			tag = "same footage"
		case it.Topic == source.Topic:
			tag = "same story"
		}
		fmt.Printf("%d. %-8s score %.3f (content %.3f, social %.3f) — %s\n",
			i+1, r.VideoID, r.Score, r.Content, r.Social, tag)
	}

	// Sanity: the known original must surface for the never-seen re-edit.
	rng := rand.New(rand.NewSource(1))
	_ = rng
	for _, r := range recs {
		if r.VideoID == source.ID || col.ByID[r.VideoID].DupOf() == source.ID {
			fmt.Println("\n✓ the original wire footage was recovered for an unseen re-edit")
			return
		}
	}
	fmt.Println("\n(original footage not in top-8 — social coverage dominated)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
