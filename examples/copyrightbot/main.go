// Copyrightbot: online near-duplicate monitoring — the operating mode of
// the content substrate the recommender builds on ([35]). A rights holder
// registers reference footage; the bot watches an incoming frame stream
// (uploads, live channels) and raises an alert the moment enough of a
// reference's signatures match, even when the upload was re-graded and
// re-cut.
//
//	go run ./examples/copyrightbot
package main

import (
	"fmt"
	"math/rand"

	"videorec/internal/signature"
	"videorec/internal/stream"
	"videorec/internal/video"
)

func main() {
	opts := stream.DefaultOptions()
	// Rights enforcement wants high precision: demand stronger per-signature
	// matches and more of them before alerting.
	opts.MatchThreshold = 0.6
	opts.AlertMatches = 4
	mon := stream.NewMonitor(opts)

	// The rights holder registers three reference clips.
	refs := map[string]*video.Video{}
	for i, name := range []string{"movie-trailer", "concert-footage", "match-highlights"} {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		v := video.Synthesize(name, i+1, video.DefaultSynthOptions(), rng)
		refs[name] = v
		mon.AddReference(name, signature.Extract(v, opts.Sig))
		fmt.Printf("registered %q (%d signatures in library)\n", name, mon.LibrarySize())
	}

	// The stream: user uploads, one of which is a re-graded, frame-dropped
	// copy of the concert footage.
	rng := rand.New(rand.NewSource(99))
	uploads := []*video.Video{
		video.Synthesize("cat-video", 7, video.DefaultSynthOptions(), rng),
		video.DropFrames(video.Brighten(refs["concert-footage"], 18), 8),
		video.Synthesize("cooking-show", 9, video.DefaultSynthOptions(), rng),
	}
	fmt.Println("\nstreaming uploads through the monitor...")
	for ui, up := range uploads {
		for _, f := range up.Frames {
			for _, alert := range mon.Push(f) {
				fmt.Printf("  ⚑ upload %d matches %q: %d signature hits, mean SimC %.2f (shots %d-%d)\n",
					ui+1, alert.VideoID, alert.Matches, alert.MeanSimilar, alert.FirstShot, alert.LastShot)
			}
		}
	}
	mon.Flush()

	fmt.Println("\nfinal alert ledger:")
	for _, a := range mon.Alerts() {
		fmt.Printf("  %-18s %d matched signatures, mean SimC %.2f\n", a.VideoID, a.Matches, a.MeanSimilar)
	}
	if len(mon.Alerts()) == 0 {
		fmt.Println("  (none)")
	}
}
