// Archive: operating the recommender like a real service — build once,
// snapshot to disk, journal live comment traffic, then recover the exact
// state after a simulated crash (snapshot + WAL replay) and keep serving.
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"videorec"
	"videorec/internal/dataset"
)

func main() {
	dir, err := os.MkdirTemp("", "videorec-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "engine.snap")
	walPath := filepath.Join(dir, "comments.wal")

	// Build the engine on the source period.
	o := dataset.DefaultOptions()
	o.Hours = 5
	o.Users = 150
	o.Seed = 77
	col := dataset.Generate(o)
	eng := videorec.New(videorec.Options{SubCommunities: 40})
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		clip := videorec.Clip{ID: it.ID, FPS: v.FPS, Owner: it.Owner, Commenters: commenters}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(clip); err != nil {
			log.Fatal(err)
		}
	}
	eng.Build()
	src := col.Queries[0].Sources[0]

	// Snapshot, then journal two months of live traffic.
	if err := eng.SaveFile(snapPath); err != nil {
		log.Fatal(err)
	}
	if err := eng.AttachJournal(walPath); err != nil {
		log.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		batch := map[string][]string{}
		for _, it := range col.Items {
			for _, cm := range it.Comments {
				if cm.Month == o.MonthsSource+m {
					batch[it.ID] = append(batch[it.ID], cm.User)
				}
			}
		}
		if _, err := eng.ApplyUpdates(batch); err != nil {
			log.Fatal(err)
		}
	}
	eng.CloseJournal()
	live, err := eng.Recommend(src, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live engine after 2 journaled months, top-5 for %s:\n", src)
	for i, r := range live {
		fmt.Printf("  %d. %s (%.3f)\n", i+1, r.VideoID, r.Score)
	}

	// "Crash." Recover from snapshot + journal.
	recovered, err := videorec.LoadFile(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := recovered.ReplayJournal(walPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered engine: snapshot + %d replayed batches\n", n)
	back, err := recovered.Recommend(src, 5)
	if err != nil {
		log.Fatal(err)
	}
	identical := len(back) == len(live)
	for i := range back {
		if identical && back[i] != live[i] {
			identical = false
		}
	}
	fmt.Printf("recommendations identical to the live engine: %v\n", identical)
}
