// Livestream: sharing communities are highly dynamic — comments keep
// arriving and user interests drift (§4.2.4). This example builds the index
// on a 12-month source period, then replays four months of live comment
// traffic through the incremental maintenance path (Figure 5), showing the
// sub-communities adapting (unions/splits) while recommendations stay
// available and fresh commenters start influencing rankings.
//
//	go run ./examples/livestream
package main

import (
	"fmt"
	"log"

	"videorec"
	"videorec/internal/dataset"
)

func main() {
	o := dataset.DefaultOptions()
	o.Hours = 6
	o.Users = 180
	o.Seed = 12
	col := dataset.Generate(o)

	eng := videorec.New(videorec.Options{SubCommunities: 40})
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		c := videorec.Clip{ID: it.ID, FPS: v.FPS, Owner: it.Owner, Commenters: commenters}
		for _, f := range v.Frames {
			c.Frames = append(c.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(c); err != nil {
			log.Fatal(err)
		}
	}
	eng.Build()
	src := col.Queries[4].Sources[0] // the "wwe" query's hottest clip
	fmt.Printf("built on the source period: %d clips, %d sub-communities\n",
		eng.Len(), eng.SubCommunities())

	show := func(tag string) {
		recs, err := eng.Recommend(src, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  top-5 for %s %s: ", src, tag)
		for i, r := range recs {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s(%.2f)", r.VideoID, r.Score)
		}
		fmt.Println()
	}
	show("before updates")

	// Replay the live months one at a time.
	for m := 0; m < o.MonthsTest; m++ {
		batch := map[string][]string{}
		n := 0
		for _, it := range col.Items {
			for _, cm := range it.Comments {
				if cm.Month == o.MonthsSource+m {
					batch[it.ID] = append(batch[it.ID], cm.User)
					n++
				}
			}
		}
		sum, err := eng.ApplyUpdates(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmonth %d: %d new comments → %d connections, %d unions, %d splits, %d videos re-vectorized\n",
			m+1, n, sum.NewConnections, sum.Unions, sum.Splits, sum.VideosRevectorized)
		show(fmt.Sprintf("after month %d", m+1))
	}

	fmt.Println("\nthe index absorbed four months of live traffic without a rebuild")
}
