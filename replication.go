package videorec

import (
	"errors"
	"io"

	"videorec/internal/core"
	"videorec/internal/store"
)

// Replication: the engine's journal doubles as a replication log. A primary
// journals every ApplyUpdates batch under a monotonically increasing
// sequence number; replicas bootstrap from a snapshot stamped with the
// cursor it covers and then apply shipped journal entries idempotently.
// Everything here runs under the writer mutex, so shipped batches, local
// mutations and snapshots interleave without tearing.

// ErrReplicationGap reports a shipped batch that does not extend the
// replica's history contiguously: an entry was lost between the primary's
// journal and this engine. The replica cannot repair this locally — it must
// re-bootstrap from a primary snapshot.
var ErrReplicationGap = errors.New("videorec: replication sequence gap — re-bootstrap from snapshot")

// ErrNoJournal is returned by replication operations that require an
// attached journal.
var ErrNoJournal = errors.New("videorec: no journal attached")

// ApplyReplicated applies one shipped journal batch under the primary's
// sequence number. Delivery is at-least-once: a batch at or below the
// current cursor is a duplicate and is skipped (returning false) — applying
// is idempotent under redelivery. A batch that would leave a gap returns
// ErrReplicationGap. When a local journal is attached the batch is appended
// to it under the same sequence number before it is applied, so the replica
// is itself crash-safe and can serve as a bootstrap source.
func (e *Engine) ApplyReplicated(seq uint64, comments map[string][]string) (bool, error) {
	return e.ApplyReplicatedEntry(seq, comments, nil)
}

// WriteReplicationSnapshot streams a bootstrap snapshot to w and returns the
// cursor it covers: the view version and journal sequence number captured
// atomically with the state. A replica that loads these bytes and then tails
// the journal from Cursor.Seq reconstructs the primary bit for bit.
func (e *Engine) WriteReplicationSnapshot(w io.Writer) (store.Cursor, error) {
	e.writeMu.Lock()
	snap := e.snapshotLocked()
	e.writeMu.Unlock()
	cur := store.Cursor{SnapshotVersion: snap.Version, Seq: snap.JournalSeq}
	return cur, store.Save(w, snap)
}

// Reload replaces the engine's state in place with a snapshot — the
// replica's re-bootstrap path when the primary has compacted its journal
// past the replica's cursor. The new state is published under a version
// that is both ≥ the snapshot's stamp and strictly greater than the current
// version, so local version-keyed caches never see a version reused for
// different state. An attached journal is reset to start at the snapshot's
// cursor.
func (e *Engine) Reload(r io.Reader) error {
	snap, err := store.Load(r)
	if err != nil {
		return err
	}
	rec, err := core.FromSnapshot(snap)
	if err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	version := snap.Version
	if prev := e.cur.Load().version; version <= prev {
		version = prev + 1
	}
	e.rec = rec
	e.cur.Store(&engineView{view: rec.Freeze(), version: version})
	e.applied.Store(snap.JournalSeq)
	if e.journal != nil {
		if err := e.journal.ResetTo(snap.JournalSeq); err != nil {
			return err
		}
	}
	return nil
}

// SaveFileAndCompact atomically snapshots the engine to path and compacts
// the attached journal down to a marker at the snapshot's cursor — the
// primary's log-trimming operation. Both happen under one writer-lock hold,
// so the snapshot covers exactly the entries the compaction drops: a
// replica that re-bootstraps from this snapshot misses nothing. Replicas
// whose cursor predates the compaction get ErrCompacted from the tail and
// re-bootstrap automatically.
func (e *Engine) SaveFileAndCompact(path string) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal == nil {
		return ErrNoJournal
	}
	if err := store.SaveFile(path, e.snapshotLocked()); err != nil {
		return err
	}
	return e.journal.Compact()
}

// JournalStatus reports the attached journal's position: whether one is
// attached, the file path, the compaction base, and the head sequence.
func (e *Engine) JournalStatus() (attached bool, path string, base, seq uint64) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal == nil {
		return false, "", 0, 0
	}
	return true, e.jpath, e.journal.Base(), e.journal.Seq()
}

// JournalPath returns the attached journal's file path ("" when none) — the
// file the replication tail endpoint reads.
func (e *Engine) JournalPath() string {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.jpath
}
