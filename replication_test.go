package videorec

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// ApplyReplicated is idempotent under at-least-once delivery: duplicates
// are skipped, gaps are refused, and a journal-shipped replica ends bitwise
// identical to the primary.
func TestApplyReplicatedShipsJournal(t *testing.T) {
	dir := t.TempDir()
	primary, col := buildEngine(t, Options{})
	if err := primary.AttachJournal(filepath.Join(dir, "primary.wal")); err != nil {
		t.Fatal(err)
	}

	// Bootstrap the replica from a replication snapshot.
	var snap bytes.Buffer
	cur, err := primary.WriteReplicationSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.AttachJournal(filepath.Join(dir, "replica.wal")); err != nil {
		t.Fatal(err)
	}
	if replica.AppliedSeq() != cur.Seq {
		t.Fatalf("replica cursor = %d, want snapshot's %d", replica.AppliedSeq(), cur.Seq)
	}

	src := col.Queries[0].Sources[0]
	batches := []map[string][]string{
		{src: {"rep-user-1", col.Users[0]}},
		{col.Items[1].ID: {"rep-user-2", col.Users[1]}},
		{src: {"rep-user-3", col.Users[2], col.Users[3]}},
	}
	for _, b := range batches {
		if _, err := primary.ApplyUpdates(b); err != nil {
			t.Fatal(err)
		}
	}

	// Ship with redelivery: every batch twice — duplicates must be skipped.
	for i, b := range batches {
		seq := cur.Seq + uint64(i) + 1
		applied, err := replica.ApplyReplicated(seq, b)
		if err != nil || !applied {
			t.Fatalf("ship seq %d: applied=%v err=%v", seq, applied, err)
		}
		applied, err = replica.ApplyReplicated(seq, b)
		if err != nil || applied {
			t.Fatalf("duplicate seq %d: applied=%v err=%v, want skipped", seq, applied, err)
		}
	}
	if replica.AppliedSeq() != primary.AppliedSeq() {
		t.Fatalf("cursors diverge: replica %d, primary %d", replica.AppliedSeq(), primary.AppliedSeq())
	}

	// A gap cannot be applied.
	if _, err := replica.ApplyReplicated(replica.AppliedSeq()+2, batches[0]); !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("gap error = %v, want ErrReplicationGap", err)
	}

	// Bitwise-identical answers.
	for _, q := range col.Queries {
		id := q.Sources[0]
		a, err := primary.Recommend(id, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := replica.Recommend(id, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s rank %d: primary %+v vs replica %+v", id, i, a[i], b[i])
			}
		}
	}

	// The replica's own journal is a valid bootstrap source: a third node
	// built from the replica's local snapshot+journal matches too.
	if err := replica.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	third, err := Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n, err := third.ReplayJournal(filepath.Join(dir, "replica.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(batches) {
		t.Fatalf("third node replayed %d batches, want %d", n, len(batches))
	}
	a, _ := primary.Recommend(src, 10)
	c, err := third.Recommend(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("rank %d: primary %+v vs chained replica %+v", i, a[i], c[i])
		}
	}
}

// A snapshot saved while journaling records its cursor, so a restart that
// replays the full journal skips the prefix the snapshot already covers
// instead of double-applying it.
func TestReplayAfterSnapshotSkipsCoveredBatches(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "eng.snap")
	walPath := filepath.Join(dir, "comments.wal")

	live, col := buildEngine(t, Options{})
	if err := live.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	src := col.Queries[0].Sources[0]
	if _, err := live.ApplyUpdates(map[string][]string{src: {"early-user", col.Users[0]}}); err != nil {
		t.Fatal(err)
	}
	// Snapshot mid-journal: covers seq 1.
	if err := live.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if _, err := live.ApplyUpdates(map[string][]string{src: {"late-user", col.Users[1]}}); err != nil {
		t.Fatal(err)
	}
	if err := live.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	recovered, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.AppliedSeq() != 1 {
		t.Fatalf("restored cursor = %d, want 1", recovered.AppliedSeq())
	}
	n, err := recovered.ReplayJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d batches, want only the 1 the snapshot missed", n)
	}
	if err := recovered.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	a, _ := live.Recommend(src, 10)
	b, err := recovered.Recommend(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: live %+v vs recovered %+v", i, a[i], b[i])
		}
	}
}

// SaveFileAndCompact trims the journal to a marker while the snapshot
// covers everything trimmed; Reload re-bootstraps an engine in place with a
// strictly advancing view version.
func TestSaveFileAndCompactThenReload(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "eng.snap")
	walPath := filepath.Join(dir, "comments.wal")

	eng, col := buildEngine(t, Options{})
	if err := eng.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	src := col.Queries[0].Sources[0]
	for i := 0; i < 3; i++ {
		if _, err := eng.ApplyUpdates(map[string][]string{src: {col.Users[i]}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.SaveFileAndCompact(snapPath); err != nil {
		t.Fatal(err)
	}
	attached, _, base, seq := eng.JournalStatus()
	if !attached || base != 3 || seq != 3 {
		t.Fatalf("journal after compact: attached=%v base=%d seq=%d, want base=seq=3", attached, base, seq)
	}
	// Appends continue past the compaction.
	if _, err := eng.ApplyUpdates(map[string][]string{src: {"post-compact"}}); err != nil {
		t.Fatal(err)
	}
	if eng.AppliedSeq() != 4 {
		t.Fatalf("cursor after post-compact update = %d, want 4", eng.AppliedSeq())
	}

	// Reload another engine in place from the compaction snapshot.
	other, _ := buildEngine(t, Options{})
	beforeVersion := other.Version()
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := other.Reload(f); err != nil {
		t.Fatal(err)
	}
	if other.AppliedSeq() != 3 {
		t.Fatalf("reloaded cursor = %d, want 3", other.AppliedSeq())
	}
	if other.Version() <= beforeVersion && other.Version() < 3 {
		t.Fatalf("reloaded version = %d, must advance past %d or match the snapshot", other.Version(), beforeVersion)
	}
	// Catch up the shipped tail and match the primary.
	if _, err := other.ApplyReplicated(4, map[string][]string{src: {"post-compact"}}); err != nil {
		t.Fatal(err)
	}
	a, _ := eng.Recommend(src, 10)
	b, err := other.Recommend(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
