package videorec

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"videorec/internal/video"
)

func makeClips(t testing.TB, n int) []Clip {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	clips := make([]Clip, n)
	for i := range clips {
		v := video.Synthesize(vidName(i), i%4, video.DefaultSynthOptions(), rng)
		clips[i] = clipFrom(v, "owner", "fan1", "fan2")
	}
	return clips
}

func vidName(i int) string { return "batch-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestAddAllMatchesSequentialAdd(t *testing.T) {
	clips := makeClips(t, 12)

	seq := New(Options{SubCommunities: 4})
	for _, c := range clips {
		if err := seq.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	seq.Build()

	par := New(Options{SubCommunities: 4})
	if err := par.AddAll(clips, 4); err != nil {
		t.Fatal(err)
	}
	par.Build()

	if seq.Len() != par.Len() {
		t.Fatalf("lengths differ: %d vs %d", seq.Len(), par.Len())
	}
	a, err := seq.Recommend(clips[0].ID, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Recommend(clips[0].ID, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs: %+v vs %+v (parallel ingest must be order-deterministic)", i, a[i], b[i])
		}
	}
}

func TestAddAllValidation(t *testing.T) {
	clips := makeClips(t, 3)
	clips[1].Frames = nil
	eng := New(Options{})
	if err := eng.AddAll(clips, 2); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("got %v, want ErrNoFrames", err)
	}
	clips2 := makeClips(t, 3)
	clips2[2].ID = ""
	eng2 := New(Options{})
	if err := eng2.AddAll(clips2, 2); !errors.Is(err, ErrEmptyID) {
		t.Fatalf("got %v, want ErrEmptyID", err)
	}
}

func TestAddAllEmptyAndDefaults(t *testing.T) {
	eng := New(Options{})
	if err := eng.AddAll(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddAll(makeClips(t, 2), 0); err != nil { // workers defaulted
		t.Fatal(err)
	}
	if eng.Len() != 2 {
		t.Errorf("Len = %d, want 2", eng.Len())
	}
}

// pollCountCtx is a context whose Err flips to Canceled after a fixed number
// of polls — a deterministic stand-in for "the deadline expired while this
// clip was being extracted", with no sleeps or races.
type pollCountCtx struct {
	context.Context
	polls atomic.Int64
	after int64
	done  chan struct{}
	once  sync.Once
}

func (c *pollCountCtx) Err() error {
	if c.polls.Add(1) > c.after {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *pollCountCtx) Done() <-chan struct{} { return c.done }

// A cancellation landing in the middle of ONE clip's extraction must abort
// the batch: the worker polls the context per shot and per signature window
// (not just between clips), so even a single enormous clip cannot stall an
// abort. The counter flips on the third poll — after the worker's per-clip
// check and the extractor's first shot poll, i.e. provably inside the
// extraction loop of the only clip in the batch.
func TestAddAllCtxCancelsMidExtraction(t *testing.T) {
	clips := makeClips(t, 1)
	ctx := &pollCountCtx{Context: context.Background(), after: 2, done: make(chan struct{})}
	eng := New(Options{})
	err := eng.AddAllCtx(ctx, clips, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want a batch-abort wrapping context.Canceled", err)
	}
	if eng.Len() != 0 {
		t.Fatalf("aborted batch ingested %d clips, want 0 (no partial view)", eng.Len())
	}
	if polls := ctx.polls.Load(); polls <= ctx.after {
		t.Fatalf("extraction was never polled (%d polls)", polls)
	}
	// The same clip extracts fine without the cancellation — the abort above
	// was the context, not the clip.
	if err := New(Options{}).AddAll(clips, 1); err != nil {
		t.Fatalf("control ingest failed: %v", err)
	}
}

func BenchmarkAddAllParallel(b *testing.B) {
	clips := makeClips(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(Options{})
		if err := eng.AddAll(clips, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddSequential(b *testing.B) {
	clips := makeClips(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(Options{})
		for _, c := range clips {
			if err := eng.Add(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}
