package videorec

import (
	"errors"
	"math/rand"
	"testing"

	"videorec/internal/video"
)

func makeClips(t testing.TB, n int) []Clip {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	clips := make([]Clip, n)
	for i := range clips {
		v := video.Synthesize(vidName(i), i%4, video.DefaultSynthOptions(), rng)
		clips[i] = clipFrom(v, "owner", "fan1", "fan2")
	}
	return clips
}

func vidName(i int) string { return "batch-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestAddAllMatchesSequentialAdd(t *testing.T) {
	clips := makeClips(t, 12)

	seq := New(Options{SubCommunities: 4})
	for _, c := range clips {
		if err := seq.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	seq.Build()

	par := New(Options{SubCommunities: 4})
	if err := par.AddAll(clips, 4); err != nil {
		t.Fatal(err)
	}
	par.Build()

	if seq.Len() != par.Len() {
		t.Fatalf("lengths differ: %d vs %d", seq.Len(), par.Len())
	}
	a, err := seq.Recommend(clips[0].ID, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Recommend(clips[0].ID, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs: %+v vs %+v (parallel ingest must be order-deterministic)", i, a[i], b[i])
		}
	}
}

func TestAddAllValidation(t *testing.T) {
	clips := makeClips(t, 3)
	clips[1].Frames = nil
	eng := New(Options{})
	if err := eng.AddAll(clips, 2); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("got %v, want ErrNoFrames", err)
	}
	clips2 := makeClips(t, 3)
	clips2[2].ID = ""
	eng2 := New(Options{})
	if err := eng2.AddAll(clips2, 2); !errors.Is(err, ErrEmptyID) {
		t.Fatalf("got %v, want ErrEmptyID", err)
	}
}

func TestAddAllEmptyAndDefaults(t *testing.T) {
	eng := New(Options{})
	if err := eng.AddAll(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddAll(makeClips(t, 2), 0); err != nil { // workers defaulted
		t.Fatal(err)
	}
	if eng.Len() != 2 {
		t.Errorf("Len = %d, want 2", eng.Len())
	}
}

func BenchmarkAddAllParallel(b *testing.B) {
	clips := makeClips(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(Options{})
		if err := eng.AddAll(clips, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddSequential(b *testing.B) {
	clips := makeClips(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(Options{})
		for _, c := range clips {
			if err := eng.Add(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}
