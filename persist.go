package videorec

import (
	"io"
	"log"

	"videorec/internal/core"
	"videorec/internal/store"
)

// Save serializes the engine's state — signatures, descriptors, the user
// interest graph and the sub-community partition — to w, stamped with the
// current view version. Derived structures (LSB tree, hash dictionary,
// inverted files) are rebuilt on Load, so snapshots stay compact. Save takes
// the writer lock for a consistent cut of the build state; lock-free readers
// keep serving the published view throughout.
func (e *Engine) Save(w io.Writer) error {
	return store.Save(w, e.snapshot())
}

// SaveFile saves the engine atomically to a file path.
func (e *Engine) SaveFile(path string) error {
	return store.SaveFile(path, e.snapshot())
}

func (e *Engine) snapshot() *core.Snapshot {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	snap := e.rec.Snapshot()
	snap.Version = e.cur.Load().version
	return snap
}

// Load restores an engine from a snapshot produced by Save. If the snapshot
// was built, the engine is immediately ready to Recommend and ApplyUpdates;
// otherwise call Build after loading. The restored state is published as
// view version 1 — the version counter always resets on load (version 0 is
// the empty state of a fresh engine), so cache keys minted by a previous
// process never alias views of this one.
func Load(r io.Reader) (*Engine, error) {
	snap, err := store.Load(r)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap)
}

// LoadFile restores an engine from a snapshot file.
func LoadFile(path string) (*Engine, error) {
	snap, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap)
}

func engineFromSnapshot(snap *core.Snapshot) (*Engine, error) {
	rec, err := core.FromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	e := &Engine{rec: rec}
	e.cur.Store(&engineView{view: rec.Freeze(), version: 1})
	return e, nil
}

// AttachJournal opens (or creates) an append-only comment journal at path:
// every subsequent ApplyUpdates batch is logged before it is applied, so a
// crash between snapshots loses no social updates. Pair with ReplayJournal
// at startup.
//
// A torn final record — the previous process died mid-append — is truncated
// away (with a logged warning) before the journal is opened for appending,
// so new batches never land after garbage and the file replays cleanly on
// the next restart. Corruption beyond a torn tail is an error.
func (e *Engine) AttachJournal(path string) error {
	if dropped, err := store.RepairJournal(path); err != nil {
		return err
	} else if dropped > 0 {
		log.Printf("videorec: journal %s: truncated %d-byte torn tail from a previous crash", path, dropped)
	}
	j, err := store.OpenJournal(path)
	if err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal != nil {
		e.journal.Close()
	}
	e.journal = j
	return nil
}

// ReplayJournal replays every batch of a journal file through ApplyUpdates
// (a missing file replays zero batches). Call after loading a snapshot and
// before AttachJournal.
func (e *Engine) ReplayJournal(path string) (int, error) {
	return store.ReplayJournalFile(path, func(comments map[string][]string) error {
		_, err := e.ApplyUpdates(comments)
		return err
	})
}

// CloseJournal flushes and detaches the journal, if any.
func (e *Engine) CloseJournal() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal == nil {
		return nil
	}
	err := e.journal.Close()
	e.journal = nil
	return err
}
