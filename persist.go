package videorec

import (
	"io"
	"log"

	"videorec/internal/core"
	"videorec/internal/store"
)

// Save serializes the engine's state — signatures, descriptors, the user
// interest graph and the sub-community partition — to w, stamped with the
// current view version. Derived structures (LSB tree, hash dictionary,
// inverted files) are rebuilt on Load, so snapshots stay compact. Save takes
// the writer lock for a consistent cut of the build state; lock-free readers
// keep serving the published view throughout.
func (e *Engine) Save(w io.Writer) error {
	return store.Save(w, e.snapshot())
}

// SaveFile saves the engine atomically to a file path.
func (e *Engine) SaveFile(path string) error {
	return store.SaveFile(path, e.snapshot())
}

func (e *Engine) snapshot() *core.Snapshot {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.snapshotLocked()
}

// snapshotLocked captures the build state stamped with the current view
// version and replication cursor. Callers must hold writeMu, which makes
// the (state, version, seq) triple consistent: no update can land between
// the three reads.
func (e *Engine) snapshotLocked() *core.Snapshot {
	snap := e.rec.Snapshot()
	snap.Version = e.cur.Load().version
	snap.JournalSeq = e.applied.Load()
	return snap
}

// Load restores an engine from a snapshot produced by Save. If the snapshot
// was built, the engine is immediately ready to Recommend and ApplyUpdates;
// otherwise call Build after loading. The restored state is published under
// the view version stamped into the snapshot, so version-keyed caches and
// replication cursors stay monotonic across restarts — the version names
// exactly the state that was saved, making reuse across processes safe.
// (Snapshots from before version stamping load as version 0 and behave like
// a fresh engine's counter.)
func Load(r io.Reader) (*Engine, error) {
	snap, err := store.Load(r)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap)
}

// LoadFile restores an engine from a snapshot file.
func LoadFile(path string) (*Engine, error) {
	snap, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap)
}

func engineFromSnapshot(snap *core.Snapshot) (*Engine, error) {
	rec, err := core.FromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	e := &Engine{rec: rec}
	e.cur.Store(&engineView{view: rec.Freeze(), version: snap.Version})
	e.applied.Store(snap.JournalSeq)
	return e, nil
}

// AttachJournal opens (or creates) an append-only comment journal at path:
// every subsequent ApplyUpdates batch is logged before it is applied, so a
// crash between snapshots loses no social updates. Pair with ReplayJournal
// at startup.
//
// A torn final record — the previous process died mid-append — is truncated
// away (with a logged warning) before the journal is opened for appending,
// so new batches never land after garbage and the file replays cleanly on
// the next restart. Corruption beyond a torn tail is an error.
func (e *Engine) AttachJournal(path string) error {
	if dropped, err := store.RepairJournal(path); err != nil {
		return err
	} else if dropped > 0 {
		log.Printf("videorec: journal %s: truncated %d-byte torn tail from a previous crash", path, dropped)
	}
	j, err := store.OpenJournal(path)
	if err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal != nil {
		e.journal.Close()
	}
	switch applied := e.applied.Load(); {
	case j.Seq() > applied:
		// The file holds batches this engine has not applied — the caller
		// skipped ReplayJournal, or replayed a different file. Adopt the
		// file's head so new appends stay contiguous; the cursor tracks the
		// journal, and the divergence is the operator's to notice.
		log.Printf("videorec: journal %s is at seq %d but only %d applied — attach after ReplayJournal to avoid gaps", path, j.Seq(), applied)
		e.applied.Store(j.Seq())
	case j.Seq() < applied:
		// The engine (via its snapshot) is ahead of the file: a fresh replica
		// journal, or a journal deleted after the last snapshot. Start the
		// log at the cursor so sequence numbers stay aligned with the
		// snapshot's coverage.
		if j.Seq() > j.Base() {
			log.Printf("videorec: journal %s ends at seq %d but snapshot covers %d — restarting log at the snapshot cursor", path, j.Seq(), applied)
		}
		if err := j.ResetTo(applied); err != nil {
			j.Close()
			return err
		}
	}
	e.journal = j
	e.jpath = path
	return nil
}

// ReplayJournal replays every batch of a journal file through the update
// path (a missing file replays zero batches). Call after loading a snapshot
// and before AttachJournal. Batches the snapshot already covers — sequence
// numbers at or below the snapshot's stamped cursor — are skipped instead
// of double-applied, so a snapshot saved after journaling started restarts
// cleanly against the full journal. Returns the number of batches applied.
func (e *Engine) ReplayJournal(path string) (int, error) {
	start := e.applied.Load()
	applied := 0
	_, err := store.ReplayJournalFileEntries(path, func(seq uint64, comments map[string][]string, edges []store.Edge) error {
		if seq > 0 && seq <= start {
			return nil // already folded into the snapshot
		}
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
		if !e.rec.Built() {
			return ErrNotBuilt
		}
		if edges != nil {
			// Shard-journal entry: replay under the globally summed edge list
			// it was appended with, exactly as ApplyConnections applied it.
			e.rec.ApplyEdges(coreEdges(edges), comments)
		} else {
			e.rec.ApplyUpdates(comments)
		}
		e.publishLocked()
		if seq > e.applied.Load() {
			e.applied.Store(seq)
		} else {
			// Legacy journals (pre-checksum) restarted sequence numbering on
			// every reopen; keep the cursor moving so Attach stays aligned.
			e.applied.Add(1)
		}
		applied++
		return nil
	})
	return applied, err
}

// CloseJournal flushes and detaches the journal, if any.
func (e *Engine) CloseJournal() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal == nil {
		return nil
	}
	err := e.journal.Close()
	e.journal = nil
	e.jpath = ""
	return err
}
