package videorec

import (
	"fmt"

	"videorec/internal/community"
	"videorec/internal/core"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/store"
)

// Sharding bridge: the surface a scatter-gather router (internal/shard)
// drives on each shard engine. A sharded deployment holds N independent
// Engines, each owning a hash slice of the corpus with its own dense id
// table, indexes, journal and COW view; the router coordinates the three
// operations that must see the whole corpus — the social build (union of
// audiences), update maintenance (globally summed edges), and the query
// fan-out (per-view gather/refine, merged top-K). Everything here reuses
// the single-engine machinery; none of it changes single-engine behavior.

// PreparedClip is a clip after validation and signature extraction — what
// travels from the router's extraction step to the owning shard's
// AddPrepared. Extraction is the expensive, lock-free part of Add; routing
// it separately means a router hashes the id, extracts once, and only the
// owning shard pays the (brief) writer-lock insertion.
type PreparedClip struct {
	ID     string
	Series signature.Series
	Desc   social.Descriptor
}

// PrepareClip validates a clip and extracts its signature series and social
// descriptor using this engine's configuration. All shards of a deployment
// share one Options, so a clip prepared against any shard ingests
// identically on every shard.
func (e *Engine) PrepareClip(clip Clip) (PreparedClip, error) {
	if clip.ID == "" {
		return PreparedClip{}, ErrEmptyID
	}
	if len(clip.Frames) == 0 {
		return PreparedClip{}, ErrNoFrames
	}
	v, err := toVideo(clip)
	if err != nil {
		return PreparedClip{}, err
	}
	return PreparedClip{
		ID:     clip.ID,
		Series: e.rec.ExtractSeries(v),
		Desc:   social.NewDescriptor(clip.Owner, clip.Commenters...),
	}, nil
}

// AddPrepared ingests a prepared clip — the shard-side half of Add.
func (e *Engine) AddPrepared(p PreparedClip) error {
	if p.ID == "" {
		return ErrEmptyID
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.rec.IngestSeries(p.ID, p.Series, p.Desc)
	e.publishLocked()
	return nil
}

// Audiences returns the per-video commenter audiences of everything this
// engine holds, capped exactly as Build caps them. A router unions every
// shard's map into the global audience map the social build needs.
func (e *Engine) Audiences() map[string][]string {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.rec.CollectAudiences()
}

// BuildFromAudiences runs the social build over an explicit global audience
// map and publishes the result — the shard-side half of a sharded Build.
// Every shard receiving the same map derives an identical user interest
// graph, partition, and dictionaries (construction is deterministic), which
// is what makes per-shard SAR vectors — and merged scatter-gather rankings —
// bit-identical to a single engine holding the whole corpus.
func (e *Engine) BuildFromAudiences(audiences map[string][]string) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.rec.BuildSocialFrom(audiences)
	e.publishLocked()
}

// Reindex rebuilds the derived index state — vectors, dictionaries,
// inverted files — around the engine's existing graph and partition, and
// publishes the result. The shard-drain re-intern path: survivors receive
// relocated records and must index them under the incrementally maintained
// partition they already hold (a fresh sub-community extraction would not
// reproduce it). Returns ErrNotBuilt before the first Build.
func (e *Engine) Reindex() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.rec.Partition() == nil {
		return ErrNotBuilt
	}
	e.rec.Reindex()
	e.publishLocked()
	return nil
}

// DeriveConnections derives the social connections a comment batch induces
// against this shard's slice of the corpus (comments on videos stored
// elsewhere contribute nothing here — their owning shard derives those). A
// router sums every shard's slice with MergeConnections to reconstruct
// exactly the edge list a whole-corpus engine would derive.
func (e *Engine) DeriveConnections(newComments map[string][]string) ([]community.Edge, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.rec.Built() {
		return nil, ErrNotBuilt
	}
	return e.rec.DeriveConnections(newComments), nil
}

// MergeConnections sums per-shard edge slices into the global deterministic
// edge list (weights of pairs contributed by several shards add).
func MergeConnections(parts ...[]community.Edge) []community.Edge {
	return core.SumConnections(parts...)
}

// ApplyConnections is the shard-side half of a sharded ApplyUpdates: it
// journals and applies one maintenance batch under the globally summed edge
// list. Every shard applies the same edges to its identical graph/partition
// copy — so all copies evolve in lockstep — while localComments (the slice
// of the batch touching videos this shard holds; comments for foreign
// videos are ignored) grows only local descriptors. The journal entry
// carries both pieces, making each shard's journal self-contained: a
// single-shard replica replays or tails it without seeing the rest of the
// corpus.
func (e *Engine) ApplyConnections(edges []community.Edge, localComments map[string][]string) (UpdateSummary, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.rec.Built() {
		return UpdateSummary{}, ErrNotBuilt
	}
	if e.journal != nil {
		if err := e.journal.AppendEntry(localComments, storeEdges(edges)); err != nil {
			return UpdateSummary{}, fmt.Errorf("videorec: journal: %w", err)
		}
		e.applied.Store(e.journal.Seq())
	} else {
		e.applied.Add(1)
	}
	rep := e.rec.ApplyEdges(edges, localComments)
	e.publishLocked()
	return summaryFromReport(rep), nil
}

// ApplyReplicatedEntry is ApplyReplicated for shard-journal entries: a
// shipped batch that carries the globally derived edge list alongside the
// shard's local comments. Edge-less entries apply through the whole-corpus
// path exactly as ApplyReplicated does.
func (e *Engine) ApplyReplicatedEntry(seq uint64, comments map[string][]string, edges []store.Edge) (bool, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.rec.Built() {
		return false, ErrNotBuilt
	}
	cur := e.applied.Load()
	if seq <= cur {
		return false, nil // duplicate delivery
	}
	if seq != cur+1 {
		return false, fmt.Errorf("%w: applied through %d, shipped %d", ErrReplicationGap, cur, seq)
	}
	if e.journal != nil {
		if err := e.journal.AppendEntryAt(seq, comments, edges); err != nil {
			return false, fmt.Errorf("videorec: journal: %w", err)
		}
	}
	if edges != nil {
		e.rec.ApplyEdges(coreEdges(edges), comments)
	} else {
		e.rec.ApplyUpdates(comments)
	}
	e.publishLocked()
	e.applied.Store(seq)
	return true, nil
}

// CurrentView returns the engine's published immutable view and its
// version — the fan-out handle: a router loads every shard's view once per
// query and runs the lock-free gather/refine path against each.
func (e *Engine) CurrentView() (*core.View, uint64) {
	cur := e.cur.Load()
	return cur.view, cur.version
}

// NewAdHocQuery validates an ad-hoc clip and builds the core query for it —
// extraction plus descriptor, against the current view's configuration. The
// query holds only data (series, compiled signatures, descriptor), so a
// router builds it once and fans the same query out to every shard's view.
func (e *Engine) NewAdHocQuery(clip Clip) (core.Query, error) {
	if len(clip.Frames) == 0 {
		return core.Query{}, ErrNoFrames
	}
	v, err := toVideo(clip)
	if err != nil {
		return core.Query{}, err
	}
	view, _ := e.CurrentView()
	return view.AdHocQuery(v, social.NewDescriptor(clip.Owner, clip.Commenters...)), nil
}

// ExportRecords returns a self-contained copy of every stored record — id,
// signature series, descriptor members — in ingestion order: the drain
// payload. A router draining this shard re-ingests these into the surviving
// shards (RecordClip reconstructs the ingestable form).
func (e *Engine) ExportRecords() []core.RecordSnapshot {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.rec.Snapshot().Records
}

// PreparedFromRecord rebuilds the ingestable form of an exported record —
// the re-intern half of a shard drain.
func PreparedFromRecord(rs core.RecordSnapshot) PreparedClip {
	return PreparedClip{
		ID:     rs.ID,
		Series: rs.Series,
		Desc:   social.NewDescriptor("", rs.Users...),
	}
}

// NumShards reports how many shard engines back this engine: one. The
// serving layer's Backend interface is shared by Engine and the router, and
// both answer per-shard introspection through it.
func (e *Engine) NumShards() int { return 1 }

// ShardEngine resolves a shard index to its engine; a plain Engine is its
// own and only shard.
func (e *Engine) ShardEngine(i int) (*Engine, bool) {
	if i != 0 {
		return nil, false
	}
	return e, true
}

// storeEdges converts derived connections to the journal wire form.
func storeEdges(in []community.Edge) []store.Edge {
	if in == nil {
		return nil
	}
	out := make([]store.Edge, len(in))
	for i, e := range in {
		out[i] = store.Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// coreEdges converts journal wire edges back to derived connections.
func coreEdges(in []store.Edge) []community.Edge {
	if in == nil {
		return nil
	}
	out := make([]community.Edge, len(in))
	for i, e := range in {
		out[i] = community.Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}
