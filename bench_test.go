// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), plus ablations of the design choices listed in DESIGN.md §4. Each
// FigXX benchmark runs the corresponding experiment end to end and reports
// its headline quantity via b.ReportMetric; cmd/experiments prints the full
// row sets.
package videorec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"videorec/internal/btree"
	"videorec/internal/community"
	"videorec/internal/core"
	"videorec/internal/emd"
	"videorec/internal/experiments"
	"videorec/internal/hashing"
	"videorec/internal/index"
	"videorec/internal/signature"
	"videorec/internal/social"
	vid "videorec/internal/video"
)

var (
	effOnce  sync.Once
	effEnv   *experiments.Env
	timeOnce sync.Once
	timeEnv  *experiments.EfficiencyEnv
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	effOnce.Do(func() { effEnv = experiments.NewEnv(experiments.DefaultScale()) })
	return effEnv
}

func benchTimeEnv(b *testing.B) *experiments.EfficiencyEnv {
	b.Helper()
	timeOnce.Do(func() { timeEnv = experiments.NewEfficiencyEnv(experiments.DefaultScale()) })
	return timeEnv
}

// BenchmarkTable2Queries regenerates Table 2: the five queries with their
// top-2 source videos.
func BenchmarkTable2Queries(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		qs := e.Table2()
		if len(qs) != 5 {
			b.Fatalf("got %d queries", len(qs))
		}
	}
}

// BenchmarkSilhouette regenerates the §4.2.2 in-text comparison: Silhouette
// Coefficient of our sub-community extraction vs spectral clustering
// (paper: 0.498 vs 0.242).
func BenchmarkSilhouette(b *testing.B) {
	e := benchEnv(b)
	var ours, spec float64
	for i := 0; i < b.N; i++ {
		ours, spec = e.Silhouette(200, 60)
	}
	b.ReportMetric(ours, "silhouette-ours")
	b.ReportMetric(spec, "silhouette-spectral")
}

// BenchmarkFig7ContentMeasures regenerates Figure 7: ERP vs DTW vs κJ.
func BenchmarkFig7ContentMeasures(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig7()
	}
	reportAR(b, rows, "kJ", "ERP", "DTW")
}

// BenchmarkFig8OmegaSweep regenerates Figure 8: the ω sweep (paper peak at
// 0.7).
func BenchmarkFig8OmegaSweep(b *testing.B) {
	e := benchEnv(b)
	omegas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig8(omegas)
	}
	reportAR(b, rows, "w=0.0", "w=0.7", "w=1.0")
}

// BenchmarkFig9KSweep regenerates Figure 9: the sub-community count sweep.
func BenchmarkFig9KSweep(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig9(e.Scale.KSweep)
	}
	labels := make([]string, len(e.Scale.KSweep))
	for i, k := range e.Scale.KSweep {
		labels[i] = fmt.Sprintf("k=%d", k)
	}
	reportAR(b, rows, labels...)
}

// BenchmarkFig10Approaches regenerates Figure 10: SR vs CSF vs CR vs AFFRF.
func BenchmarkFig10Approaches(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig10()
	}
	reportAR(b, rows, "CSF", "SR", "CR", "AFFRF")
}

// BenchmarkFig11UpdateEffect regenerates Figure 11: effectiveness stability
// while replaying 1–4 months of social updates.
func BenchmarkFig11UpdateEffect(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig11()
	}
	reportAR(b, rows, "0mo", "4mo")
}

// BenchmarkFig12aSAR regenerates Figure 12(a): CSF vs CSF-SAR vs CSF-SAR-H
// recommendation time over the collection-size sweep.
func BenchmarkFig12aSAR(b *testing.B) {
	e := benchTimeEnv(b)
	var rows []experiments.TimeRow
	for i := 0; i < b.N; i++ {
		rows = e.Fig12a()
	}
	reportTime(b, rows)
}

// BenchmarkFig12bVsCR regenerates Figure 12(b): CSF-SAR-H vs the
// content-only CR baseline.
func BenchmarkFig12bVsCR(b *testing.B) {
	e := benchTimeEnv(b)
	var rows []experiments.TimeRow
	for i := 0; i < b.N; i++ {
		rows = e.Fig12b()
	}
	reportTime(b, rows)
}

// BenchmarkFig12cUpdateCost regenerates Figure 12(c): maintenance cost for
// 1–4 months of social updates.
func BenchmarkFig12cUpdateCost(b *testing.B) {
	e := benchTimeEnv(b)
	var rows []experiments.UpdateRow
	for i := 0; i < b.N; i++ {
		rows = e.Fig12c()
	}
	for _, r := range rows {
		b.ReportMetric(r.Millis, fmt.Sprintf("ms-%dmo", r.Months))
	}
}

func reportAR(b *testing.B, rows []experiments.Row, labels ...string) {
	for _, r := range rows {
		for _, l := range labels {
			if r.Label == l && r.TopK == 10 {
				b.ReportMetric(r.AR, "AR10-"+l)
			}
		}
	}
}

func reportTime(b *testing.B, rows []experiments.TimeRow) {
	for _, r := range rows {
		b.ReportMetric(r.MillisPerQuery, fmt.Sprintf("ms-%s-%.0fh", r.Label, r.Hours))
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationEMD1DvsSimplex: the closed-form 1-D EMD fast path vs the
// general transportation simplex on identical inputs.
func BenchmarkAblationEMD1DvsSimplex(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 24
	v1 := make([]float64, n)
	w1 := make([]float64, n)
	v2 := make([]float64, n)
	w2 := make([]float64, n)
	for i := 0; i < n; i++ {
		v1[i], v2[i] = rng.Float64(), rng.Float64()
		w1[i], w2[i] = 1, 1
	}
	if err := emd.Normalize(w1); err != nil {
		b.Fatal(err)
	}
	if err := emd.Normalize(w2); err != nil {
		b.Fatal(err)
	}
	b.Run("closed-form-1d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := emd.Distance1D(v1, w1, v2, w2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transportation-simplex", func(b *testing.B) {
		cost := emd.GroundL1Cost(v1, v2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := emd.Solve(cost, w1, w2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPartition: the descending-Kruskal dual vs the literal
// Figure 3 removal loop (identical outputs, property-tested).
func BenchmarkAblationPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := community.NewGraph()
	for i := 0; i < 300; i++ {
		for j := 0; j < 6; j++ {
			u := fmt.Sprintf("u%d", i)
			v := fmt.Sprintf("u%d", rng.Intn(300))
			g.AddEdgeWeight(u, v, float64(1+rng.Intn(9)))
		}
	}
	b.Run("kruskal-dual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			community.ExtractSubCommunities(g, 40)
		}
	})
	b.Run("literal-removal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			community.ExtractLiteral(g, 40)
		}
	})
}

// BenchmarkAblationHashTable: the paper's chained shift-add-xor table vs the
// built-in map for user → sub-community lookups.
func BenchmarkAblationHashTable(b *testing.B) {
	const n = 20000
	keys := make([]string, n)
	tb := hashing.NewTable(1<<12, 17)
	m := make(map[string]int, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("user%05d", i)
		tb.Insert(keys[i], i%60)
		m[keys[i]] = i % 60
	}
	b.Run("chained-shift-add-xor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb.Lookup(keys[i%n])
		}
	})
	b.Run("go-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m[keys[i%n]]
		}
	})
}

// BenchmarkAblationLSBvsScan: LSB-index probed recommendation vs exhaustive
// full-scan refinement on the same collection and query.
func BenchmarkAblationLSBvsScan(b *testing.B) {
	e := benchEnv(b)
	mk := func(fullScan bool) (*core.Recommender, string) {
		opts := core.DefaultOptions()
		opts.FullScan = fullScan
		opts.CandidateLimit = 80
		opts.ContentProbe = 128
		r := e.BuildRecommender(opts, e.Col)
		return r, e.Sources()[0]
	}
	b.Run("lsb-probed", func(b *testing.B) {
		r, src := mk(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RecommendID(src, 10)
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		r, src := mk(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RecommendID(src, 10)
		}
	})
}

// BenchmarkAblationSARAccuracy: how closely s̃J tracks the exact sJ on real
// descriptor pairs, and their relative cost. Accuracy is reported as the
// mean absolute deviation over the sampled pairs.
func BenchmarkAblationSARAccuracy(b *testing.B) {
	e := benchEnv(b)
	opts := core.DefaultOptions()
	r := e.BuildRecommender(opts, e.Col)
	ids := make([]string, 0, len(e.Col.Items))
	for _, it := range e.Col.Items {
		ids = append(ids, it.ID)
	}
	var dev float64
	pairs := 0
	for i := 0; i < 50 && i < len(ids); i++ {
		ra, _ := r.Record(ids[i])
		for j := i + 1; j < i+10 && j < len(ids); j++ {
			rb, _ := r.Record(ids[j])
			exact := social.Jaccard(ra.Desc, rb.Desc)
			approx := social.ApproxJaccard(ra.Vec, rb.Vec)
			if exact > approx {
				dev += exact - approx
			} else {
				dev += approx - exact
			}
			pairs++
		}
	}
	ra, _ := r.Record(ids[0])
	rb, _ := r.Record(ids[1])
	b.Run("exact-sJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			social.Jaccard(ra.Desc, rb.Desc)
		}
	})
	b.Run("sar-approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			social.ApproxJaccard(ra.Vec, rb.Vec)
		}
	})
	b.ReportMetric(dev/float64(pairs), "mean-abs-deviation")
}

// BenchmarkEndToEndIngest measures the full ingest pipeline: synthesis,
// shot detection, signature extraction and indexing of one clip.
func BenchmarkEndToEndIngest(b *testing.B) {
	opts := core.DefaultOptions()
	r := core.NewRecommender(opts)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vid.Synthesize(fmt.Sprintf("v%d", i), i%8, vid.DefaultSynthOptions(), rng)
		r.IngestVideo(v.ID, v, social.NewDescriptor("owner", "a", "b"))
	}
}

// BenchmarkSignatureExtraction isolates the content pipeline of §4.1.
func BenchmarkSignatureExtraction(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := vid.Synthesize("x", 3, vid.DefaultSynthOptions(), rng)
	o := signature.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.Extract(v, o)
	}
}

// BenchmarkBTreeLCPWalk isolates the LSB-tree's longest-common-prefix
// neighbour iteration.
func BenchmarkBTreeLCPWalk(b *testing.B) {
	tr := btree.New[int](64)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		tr.Insert(rng.Uint64(), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.Seek(rng.Uint64())
		for j := 0; j < 32 && it.Valid(); j++ {
			it.Next()
		}
	}
}

// BenchmarkRecommendParallel drives Recommend from all procs at once —
// the serving shape the lock-free view design targets. Reads load the
// published view through an atomic pointer, so throughput should scale with
// GOMAXPROCS instead of collapsing onto a reader lock.
func BenchmarkRecommendParallel(b *testing.B) {
	eng, col := buildEngine(b, Options{})
	var sources []string
	for _, q := range col.Queries {
		sources = append(sources, q.Sources...)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			src := sources[i%len(sources)]
			i++
			if _, err := eng.Recommend(src, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRefineSerialVsParallel: step-3 refinement with the worker pool
// off (RefineWorkers=1) vs on (0 = GOMAXPROCS). FullScan maximizes the
// candidate set so the κJ EMD work dominates. Rankings are bit-identical
// either way — this measures latency only.
func BenchmarkRefineSerialVsParallel(b *testing.B) {
	e := benchEnv(b)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.FullScan = true
			opts.RefineWorkers = cfg.workers
			r := e.BuildRecommender(opts, e.Col)
			src := e.Sources()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.RecommendID(src, 10)
			}
		})
	}
}

// BenchmarkAblationLSBForest: probe cost of the LSB forest at different
// sizes (1 tree = [28]'s single-curve degradation risk; more trees = better
// recall at proportional walk cost).
func BenchmarkAblationLSBForest(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	var seriesSet []signature.Series
	for i := 0; i < 24; i++ {
		v := vid.Synthesize(fmt.Sprintf("f%d", i), i%8, vid.DefaultSynthOptions(), rng)
		seriesSet = append(seriesSet, signature.Extract(v, signature.DefaultOptions()))
	}
	for _, trees := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("trees-%d", trees), func(b *testing.B) {
			o := index.DefaultLSBOptions()
			o.Trees = trees
			ix := index.NewLSB(o)
			for i, s := range seriesSet {
				ix.Add(uint32(i), s)
			}
			q := seriesSet[3]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ix.NewWalker(q)
				for probe := 0; probe < 64; probe++ {
					if _, _, ok := w.Next(); !ok {
						break
					}
				}
			}
		})
	}
}
