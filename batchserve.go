package videorec

import (
	"context"
	"fmt"
	"time"

	"videorec/internal/core"
)

// BatchRequest is one query inside a coalesced batch: a stored clip id, the
// requested result count, and an optional per-request context. A nil Ctx
// means the request is bounded only by the batch context passed to
// RecommendBatchCtx.
type BatchRequest struct {
	ClipID string
	TopK   int
	Ctx    context.Context
}

// BatchAnswer is one request's answer. Requests that asked for the same
// (ClipID, TopK) share one Results slice — treat it as read-only, exactly
// like the results of two concurrent Recommend calls for the same clip.
type BatchAnswer struct {
	Results []Recommendation
	Meta    RecommendMeta
	Err     error
}

// RecommendBatch answers a batch of stored-clip queries in one shared pass.
// Equivalent to RecommendBatchCtx with a background batch context.
func (e *Engine) RecommendBatch(reqs []BatchRequest) []BatchAnswer {
	return e.RecommendBatchCtx(context.Background(), reqs)
}

// RecommendBatchCtx answers a batch of stored-clip queries against ONE
// loaded view, sharing work across the batch:
//
//   - Duplicate (ClipID, TopK) requests — the common case under Zipf-shaped
//     click traffic — are computed once and fanned back to every requester.
//   - Distinct requests share candidate generation: one merged pass over the
//     inverted files and one LSB walk set-up per batch chunk instead of one
//     per query (see core.RecommendBatch).
//
// Per-request answers are bit-identical to serial RecommendCtx calls. The
// batch context bounds the whole batch (a serving layer passes its base
// context); each request's own Ctx bounds that request alone — a cancelled
// request settles with its context error while the rest of the batch
// completes, and the request with the nearest deadline degrades (or fails)
// without dragging its cohort down. A deduplicated group of requests runs
// until the LAST member's deadline, and each member is then settled against
// its own context.
func (e *Engine) RecommendBatchCtx(ctx context.Context, reqs []BatchRequest) []BatchAnswer {
	if ctx == nil {
		ctx = context.Background()
	}
	answers := make([]BatchAnswer, len(reqs))
	if len(reqs) == 0 {
		return answers
	}
	cur := e.cur.Load()
	for i := range answers {
		answers[i].Meta.ViewVersion = cur.version
	}
	if !cur.view.Built() {
		for i := range answers {
			answers[i].Err = ErrNotBuilt
		}
		return answers
	}

	// Group identical (ClipID, TopK) requests behind one BatchItem, keeping
	// first-seen order so the computed batch is deterministic.
	type groupKey struct {
		clipID string
		topK   int
	}
	type group struct {
		item    core.BatchItem
		exclude [1]string
		members []int
		cancel  context.CancelFunc
	}
	groups := make(map[groupKey]*group, len(reqs))
	ordered := make([]*group, 0, len(reqs))
	for i, req := range reqs {
		if rctx := req.Ctx; rctx != nil && rctx.Err() != nil {
			answers[i].Err = rctx.Err()
			continue
		}
		if !cur.view.Has(req.ClipID) {
			answers[i].Err = fmt.Errorf("%w: %s", ErrNotFound, req.ClipID)
			continue
		}
		k := groupKey{req.ClipID, req.TopK}
		g, ok := groups[k]
		if !ok {
			q, _ := cur.view.QueryFor(req.ClipID)
			g = &group{item: core.BatchItem{Query: q, TopK: req.TopK}}
			g.exclude[0] = req.ClipID
			g.item.Exclude = g.exclude[:]
			groups[k] = g
			ordered = append(ordered, g)
		}
		g.members = append(g.members, i)
	}
	if len(ordered) == 0 {
		return answers
	}

	// A singleton group keeps its member's context verbatim — exact serial
	// semantics, including that member's own deadline driving degradation. A
	// shared group must outlive every member, so it runs under the LATEST
	// member deadline (or the plain batch context when any member is
	// unbounded); members are re-checked against their own contexts below.
	items := make([]core.BatchItem, len(ordered))
	for gi, g := range ordered {
		if len(g.members) == 1 {
			g.item.Ctx = reqs[g.members[0]].Ctx
		} else {
			var latest time.Time
			bounded := true
			for _, m := range g.members {
				rctx := reqs[m].Ctx
				if rctx == nil {
					bounded = false
					break
				}
				d, ok := rctx.Deadline()
				if !ok {
					bounded = false
					break
				}
				if d.After(latest) {
					latest = d
				}
			}
			if bounded {
				g.item.Ctx, g.cancel = context.WithDeadline(ctx, latest)
			}
		}
		items[gi] = g.item
	}

	outs := cur.view.RecommendBatch(ctx, items)

	for gi, g := range ordered {
		out := outs[gi]
		var shared []Recommendation
		if out.Err == nil {
			shared = convert(out.Results)
		}
		for _, m := range g.members {
			if rctx := reqs[m].Ctx; rctx != nil && rctx.Err() != nil {
				answers[m].Err = rctx.Err()
				continue
			}
			if out.Err != nil {
				answers[m].Err = out.Err
				continue
			}
			answers[m].Results = shared
			answers[m].Meta.Degraded = out.Info.Degraded
		}
		if g.cancel != nil {
			g.cancel()
		}
	}
	return answers
}
