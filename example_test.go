package videorec_test

import (
	"fmt"
	"math/rand"

	"videorec"
	"videorec/internal/video"
)

// makeClip synthesizes a deterministic clip for the examples. Real callers
// would fill Frames from decoded footage.
func makeClip(id string, topic int, seed int64, owner string, commenters ...string) videorec.Clip {
	rng := rand.New(rand.NewSource(seed))
	v := video.Synthesize(id, topic, video.DefaultSynthOptions(), rng)
	c := videorec.Clip{ID: id, FPS: v.FPS, Owner: owner, Commenters: commenters}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
	}
	return c
}

// Build a small index and recommend for a clicked clip: the repost shares
// footage with cats-1 (content relevance), the other cat clips share its
// audience (social relevance).
func Example() {
	eng := videorec.New(videorec.Options{}) // ω=0.7, k=60, CSF-SAR-H

	fans := []string{"ada", "bo", "cy"}
	for i := 1; i <= 3; i++ {
		clip := makeClip(fmt.Sprintf("cats-%d", i), 1, int64(i), fans[i-1], fans...)
		if err := eng.Add(clip); err != nil {
			panic(err)
		}
	}
	trainFans := []string{"ed", "fil", "gus"}
	for i := 1; i <= 3; i++ {
		clip := makeClip(fmt.Sprintf("trains-%d", i), 2, int64(10+i), trainFans[i-1], trainFans...)
		if err := eng.Add(clip); err != nil {
			panic(err)
		}
	}
	eng.Build()

	recs, err := eng.Recommend("cats-1", 3)
	if err != nil {
		panic(err)
	}
	for i, r := range recs {
		fmt.Printf("%d. %s\n", i+1, r.VideoID)
	}
	// Output:
	// 1. cats-2
	// 2. cats-3
	// 3. trains-1
}

// ExampleEngine_RecommendClip serves an anonymous visitor watching a clip
// the index has never seen — the scenario the paper targets.
func ExampleEngine_RecommendClip() {
	eng := videorec.New(videorec.Options{})
	for i := 1; i <= 4; i++ {
		if err := eng.Add(makeClip(fmt.Sprintf("v%d", i), i%2, int64(i), "owner", "fan-a", "fan-b")); err != nil {
			panic(err)
		}
	}
	eng.Build()

	visitorView := makeClip("current-view", 1, 99, "", "fan-a")
	recs, err := eng.RecommendClip(visitorView, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(recs) > 0)
	// Output:
	// true
}
