package videorec

import (
	"fmt"
	"runtime"
	"sync"

	"videorec/internal/signature"
	"videorec/internal/social"
)

// AddAll ingests a batch of clips, extracting signatures in parallel across
// workers (0 = GOMAXPROCS). Extraction — shot detection, block merging,
// cuboid construction — dominates ingest cost and is embarrassingly
// parallel; the index insertions themselves are serialized. The first
// validation or extraction error aborts the batch: clips processed before
// the error remain ingested, the rest are skipped.
func (e *Engine) AddAll(clips []Clip, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(clips) {
		workers = len(clips)
	}
	if len(clips) == 0 {
		return nil
	}

	type extracted struct {
		idx    int
		series signature.Series
		desc   social.Descriptor
		err    error
	}
	jobs := make(chan int)
	results := make(chan extracted, len(clips))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				clip := clips[i]
				out := extracted{idx: i}
				switch {
				case clip.ID == "":
					out.err = fmt.Errorf("clip %d: %w", i, ErrEmptyID)
				case len(clip.Frames) == 0:
					out.err = fmt.Errorf("clip %d (%s): %w", i, clip.ID, ErrNoFrames)
				default:
					v, err := toVideo(clip)
					if err != nil {
						out.err = err
					} else {
						out.series = e.rec.ExtractSeries(v)
						out.desc = social.NewDescriptor(clip.Owner, clip.Commenters...)
					}
				}
				results <- out
			}
		}()
	}
	go func() {
		for i := range clips {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	// Ingest in input order so collection order stays deterministic.
	pending := make([]*extracted, len(clips))
	next := 0
	for res := range results {
		res := res
		pending[res.idx] = &res
		for next < len(clips) && pending[next] != nil {
			p := pending[next]
			if p.err != nil {
				// Drain remaining workers before returning.
				for range results {
				}
				return p.err
			}
			e.ingestExtracted(clips[next].ID, p.series, p.desc)
			next++
		}
	}
	return nil
}

// ingestExtracted stores one pre-extracted clip under the write lock.
func (e *Engine) ingestExtracted(id string, series signature.Series, desc social.Descriptor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec.IngestSeries(id, series, desc)
	e.built = false
}
