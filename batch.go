package videorec

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"videorec/internal/signature"
	"videorec/internal/social"
)

// AddAll ingests a batch of clips, extracting signatures in parallel across
// workers (0 = GOMAXPROCS). Extraction — shot detection, block merging,
// cuboid construction — dominates ingest cost and is embarrassingly
// parallel; the index insertions themselves are serialized and the whole
// batch is published as ONE new view (one version bump), not one per clip.
//
// Partial-ingest contract: clips are validated and ingested in input order.
// On the first validation or extraction error the batch stops — every clip
// before the failing one remains ingested and is published in the new view;
// the failing clip and everything after it are skipped. The returned error
// identifies the failing clip by batch index and, when it has one, its ID
// (e.g. `clip 3 ("v-xyz"): ...`), and unwraps to the underlying cause
// (ErrEmptyID, ErrNoFrames, ...), so callers can both report and classify
// the failure.
func (e *Engine) AddAll(clips []Clip, workers int) error {
	return e.AddAllCtx(context.Background(), clips, workers)
}

// AddAllCtx is AddAll with cooperative cancellation: the context is polled
// inside each clip's extraction loop (per shot and per signature window, not
// just between clips), and a cancellation abandons the batch before anything
// is ingested — no partial view is published and ctx.Err() is returned, so
// an aborted bulk upload never leaves half a batch behind and never stalls
// behind one enormous clip already being extracted.
func (e *Engine) AddAllCtx(ctx context.Context, clips []Clip, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(clips) {
		workers = len(clips)
	}
	if len(clips) == 0 {
		return nil
	}

	type extracted struct {
		series signature.Series
		desc   social.Descriptor
		err    error
	}
	out := make([]extracted, len(clips))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain the channel without extracting
				}
				clip := clips[i]
				switch {
				case clip.ID == "":
					out[i].err = fmt.Errorf("clip %d: %w", i, ErrEmptyID)
				case len(clip.Frames) == 0:
					out[i].err = fmt.Errorf("clip %d (%q): %w", i, clip.ID, ErrNoFrames)
				default:
					v, err := toVideo(clip)
					if err != nil {
						out[i].err = fmt.Errorf("clip %d (%q): %w", i, clip.ID, err)
					} else if series, err := e.rec.ExtractSeriesCtx(ctx, v); err != nil {
						out[i].err = err // batch already aborting; error unused
					} else {
						out[i].series = series
						out[i].desc = social.NewDescriptor(clip.Owner, clip.Commenters...)
					}
				}
			}
		}()
	}
	for i := range clips {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("videorec: batch ingest aborted: %w", err)
	}

	// Ingest in input order so collection order stays deterministic, and
	// publish whatever prefix landed — even when the batch stops early.
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	ingested := 0
	defer func() {
		if ingested > 0 {
			e.publishLocked()
		}
	}()
	for i := range clips {
		if err := out[i].err; err != nil {
			return err
		}
		e.rec.IngestSeries(clips[i].ID, out[i].series, out[i].desc)
		ingested++
	}
	return nil
}
